"""Unit tests for price-performance optimization (Section 2.3 companion)."""

import numpy as np
import pytest

from repro.exceptions import PipelineError
from repro.pcc import PowerLawPCC
from repro.tasq.price_performance import (
    cheapest_within_deadline,
    job_cost,
    pareto_frontier,
)


class TestJobCost:
    def test_formula(self):
        pcc = PowerLawPCC(a=-0.5, b=100.0)
        # cost = A * b * A^a = b * A^(1+a) = 100 * 4^0.5 = 200
        assert job_cost(pcc, 4) == pytest.approx(200.0)

    def test_rate_scales(self):
        pcc = PowerLawPCC(a=-0.5, b=100.0)
        assert job_cost(pcc, 4, rate_per_token_second=2.0) == pytest.approx(
            400.0
        )

    def test_imperfect_scaling_costs_more(self):
        """With a > -1, parallelism wastes money (cost grows with A)."""
        pcc = PowerLawPCC(a=-0.5, b=100.0)
        assert job_cost(pcc, 16) > job_cost(pcc, 4)

    def test_perfect_scaling_cost_constant(self):
        pcc = PowerLawPCC(a=-1.0, b=100.0)
        assert job_cost(pcc, 4) == pytest.approx(job_cost(pcc, 64))

    def test_validation(self):
        pcc = PowerLawPCC(a=-1.0, b=100.0)
        with pytest.raises(PipelineError):
            job_cost(pcc, 0)
        with pytest.raises(PipelineError):
            job_cost(pcc, 4, rate_per_token_second=0)


class TestDeadline:
    def test_closed_form(self):
        pcc = PowerLawPCC(a=-1.0, b=1000.0)
        # runtime(A) = 1000/A <= 50  =>  A >= 20
        assert cheapest_within_deadline(pcc, 50.0) == 20

    def test_deadline_met(self):
        pcc = PowerLawPCC(a=-0.6, b=2000.0)
        tokens = cheapest_within_deadline(pcc, 120.0)
        assert pcc.runtime(tokens) <= 120.0 * 1.0001
        if tokens > 1:
            assert pcc.runtime(tokens - 1) > 120.0

    def test_infeasible_returns_none(self):
        pcc = PowerLawPCC(a=-1.0, b=1000.0)
        assert cheapest_within_deadline(pcc, 1.0, max_tokens=100) is None

    def test_flat_curve(self):
        fast = PowerLawPCC(a=0.0, b=10.0)
        slow = PowerLawPCC(a=0.0, b=1000.0)
        assert cheapest_within_deadline(fast, 60.0) == 1
        assert cheapest_within_deadline(slow, 60.0) is None

    def test_respects_min_tokens(self):
        pcc = PowerLawPCC(a=-1.0, b=100.0)
        assert cheapest_within_deadline(pcc, 1000.0, min_tokens=5) == 5

    def test_validation(self):
        pcc = PowerLawPCC(a=-1.0, b=100.0)
        with pytest.raises(PipelineError):
            cheapest_within_deadline(pcc, 0.0)
        with pytest.raises(PipelineError):
            cheapest_within_deadline(PowerLawPCC(a=0.5, b=1.0), 10.0)


class TestParetoFrontier:
    def test_tradeoff_curve_all_efficient(self):
        pcc = PowerLawPCC(a=-0.5, b=1000.0)
        frontier = pareto_frontier(pcc, min_tokens=1, max_tokens=128)
        assert len(frontier) >= 2
        # Sorted by tokens: runtime falls, cost rises (a > -1).
        runtimes = [p.runtime for p in frontier]
        costs = [p.cost for p in frontier]
        assert all(a >= b for a, b in zip(runtimes, runtimes[1:]))
        assert all(a <= b for a, b in zip(costs, costs[1:]))

    def test_no_point_dominated(self):
        pcc = PowerLawPCC(a=-0.7, b=500.0)
        frontier = pareto_frontier(pcc, max_tokens=64)
        for point in frontier:
            for other in frontier:
                dominated = (
                    other.cost < point.cost and other.runtime < point.runtime
                )
                assert not dominated

    def test_flat_curve_collapses(self):
        pcc = PowerLawPCC(a=0.0, b=100.0)
        frontier = pareto_frontier(pcc, max_tokens=64)
        assert len(frontier) == 1
        assert frontier[0].tokens == 1

    def test_validation(self):
        pcc = PowerLawPCC(a=-1.0, b=100.0)
        with pytest.raises(PipelineError):
            pareto_frontier(pcc, min_tokens=0)
        with pytest.raises(PipelineError):
            pareto_frontier(pcc, num_points=1)
