"""Tests for repro.fleet: global allocation, scheduling, evaluation.

The allocator's promise is simple — never exceed the cap, never leave a
demand outside its bounds, and spend spare tokens where the predicted
PCCs say they buy the most run time. These tests check that promise
policy by policy, then through the scheduler, the evaluation harness,
and the serving integration.
"""

import dataclasses
import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ExecutionError, FittingError, FleetError
from repro.fleet import (
    BASELINE_NAMES,
    POLICY_NAMES,
    CandidateGrid,
    DeadlineAwarePolicy,
    FleetJob,
    FleetReport,
    FleetScheduler,
    GlobalAllocator,
    JobDemand,
    KnapsackPolicy,
    WaterFillingPolicy,
    build_demands,
    compare_policies,
    make_policy,
    pcc_grids,
    score_usable,
    skyline_grid,
    token_grid,
)
from repro.pcc.curve import PowerLawPCC
from repro.scope.cluster import QueueOutcome, QueueReport
from repro.tasq.pipeline import TokenRecommendation


def demand(job_id, a=-0.8, b=500.0, lo=1, hi=256, deadline=None):
    return JobDemand(
        job_id=job_id,
        pcc=PowerLawPCC(a=a, b=b),
        min_tokens=lo,
        max_tokens=hi,
        deadline=deadline,
    )


def total_runtime(demands, grants):
    return float(
        sum(d.pcc.runtime(int(g)) for d, g in zip(demands, grants))
    )


def brute_force_optimum(demands, cap):
    """Exhaustive integer optimum — only for tiny instances."""
    ranges = [
        range(d.min_tokens, d.max_tokens + 1) for d in demands
    ]
    best = None
    for grants in itertools.product(*ranges):
        if sum(grants) > cap:
            continue
        runtime = total_runtime(demands, grants)
        if best is None or runtime < best:
            best = runtime
    return best


class TestJobDemand:
    def test_validation(self):
        with pytest.raises(FleetError):
            demand("a", lo=0)
        with pytest.raises(FleetError):
            demand("a", lo=10, hi=5)
        with pytest.raises(FleetError):
            demand("a", a=0.3)  # increasing PCC
        with pytest.raises(FleetError):
            demand("a", deadline=0.0)


class TestWaterFilling:
    def test_symmetric_jobs_split_evenly(self):
        demands = [demand(f"j{i}", a=-0.8, hi=100) for i in range(4)]
        grants = WaterFillingPolicy().allocate(demands, cap=120)
        assert list(grants) == [30, 30, 30, 30]

    def test_ample_cap_grants_maximums(self):
        demands = [demand("a", hi=40), demand("b", hi=60)]
        grants = WaterFillingPolicy().allocate(demands, cap=500)
        assert list(grants) == [40, 60]

    def test_contended_cap_is_fully_spent(self):
        demands = [demand(f"j{i}", a=-0.5 - 0.1 * i) for i in range(3)]
        grants = WaterFillingPolicy().allocate(demands, cap=100)
        assert int(np.sum(grants)) == 100

    def test_near_optimal_on_concave_curves(self):
        demands = [
            demand("steep", a=-0.9, b=300.0, lo=1, hi=12),
            demand("mid", a=-0.5, b=500.0, lo=2, hi=12),
            demand("shallow", a=-0.2, b=800.0, lo=1, hi=12),
        ]
        cap = 18
        grants = WaterFillingPolicy().allocate(demands, cap)
        achieved = total_runtime(demands, grants)
        optimum = brute_force_optimum(demands, cap)
        assert achieved <= optimum * 1.01

    def test_marginal_gains_equalized_at_interior_solution(self):
        # KKT: interior grants share one multiplier, so the marginal
        # run-time gain of the next token is (nearly) equal across jobs.
        demands = [
            demand("a", a=-0.9, b=300.0, hi=10_000),
            demand("b", a=-0.6, b=900.0, hi=10_000),
        ]
        grants = WaterFillingPolicy().allocate(demands, cap=400)
        gains = [
            d.pcc.runtime(g) - d.pcc.runtime(g + 1)
            for d, g in zip(demands, grants)
        ]
        assert gains[0] == pytest.approx(gains[1], rel=0.05)

    def test_flat_curves_get_minimums(self):
        demands = [demand(f"j{i}", a=0.0, lo=3, hi=50) for i in range(3)]
        grants = WaterFillingPolicy().allocate(demands, cap=60)
        assert list(grants) == [3, 3, 3]

    def test_respects_bounds(self):
        demands = [demand("tiny", lo=2, hi=4), demand("big", lo=5, hi=90)]
        grants = WaterFillingPolicy().allocate(demands, cap=50)
        for d, g in zip(demands, grants):
            assert d.min_tokens <= g <= d.max_tokens


class TestKnapsack:
    def test_feasible_under_cap(self):
        demands = [demand(f"j{i}", a=-0.4 - 0.2 * i) for i in range(4)]
        cap = 200
        grants = KnapsackPolicy().allocate(demands, cap)
        assert int(np.sum(grants)) <= cap
        for d, g in zip(demands, grants):
            assert d.min_tokens <= g <= d.max_tokens

    def test_upgrades_improve_on_minimums(self):
        demands = [demand("a", hi=64), demand("b", a=-0.3, hi=64)]
        grants = KnapsackPolicy().allocate(demands, cap=80)
        floor_runtime = total_runtime(
            demands, [d.min_tokens for d in demands]
        )
        assert total_runtime(demands, grants) < floor_runtime

    def test_near_optimal_on_tiny_instance(self):
        demands = [
            demand("steep", a=-0.9, b=300.0, lo=1, hi=12),
            demand("shallow", a=-0.2, b=800.0, lo=1, hi=12),
        ]
        cap = 16
        grants = KnapsackPolicy(num_points=12).allocate(demands, cap)
        achieved = total_runtime(demands, grants)
        optimum = brute_force_optimum(demands, cap)
        assert achieved <= optimum * 1.05

    def test_uses_provided_grid(self):
        grid = CandidateGrid(
            tokens=np.array([4, 8, 16], dtype=np.int64),
            runtimes=np.array([100.0, 60.0, 40.0]),
        )
        d = dataclasses.replace(demand("a", lo=4, hi=16), grid=grid)
        grants = KnapsackPolicy().allocate([d], cap=100)
        assert grants[0] in (4, 8, 16)

    def test_rejects_grid_outside_demand_bounds(self):
        grid = CandidateGrid(
            tokens=np.array([1, 8], dtype=np.int64),
            runtimes=np.array([100.0, 60.0]),
        )
        d = dataclasses.replace(demand("a", lo=4, hi=16), grid=grid)
        with pytest.raises(FleetError):
            KnapsackPolicy().allocate([d], cap=100)


class TestDeadlineAware:
    def test_floors_raised_to_meet_deadlines(self):
        # runtime(A) = 1000 * A^-1: needs A >= 50 for a 20 s deadline.
        demands = [
            demand("a", a=-1.0, b=1000.0, hi=200, deadline=20.0),
            demand("b", a=-1.0, b=1000.0, hi=200, deadline=40.0),
        ]
        grants = DeadlineAwarePolicy().allocate(demands, cap=300)
        for d, g in zip(demands, grants):
            assert d.pcc.runtime(int(g)) <= d.deadline + 1e-9

    def test_graceful_fallback_when_jointly_infeasible(self):
        # Each job alone could meet its deadline, but not both under
        # the cap: the policy must degrade, never raise.
        demands = [
            demand("a", a=-1.0, b=1000.0, hi=200, deadline=10.0),
            demand("b", a=-1.0, b=1000.0, hi=200, deadline=10.0),
        ]
        grants = DeadlineAwarePolicy().allocate(demands, cap=120)
        assert int(np.sum(grants)) <= 120
        for d, g in zip(demands, grants):
            assert d.min_tokens <= g <= d.max_tokens

    def test_individually_infeasible_deadline_keeps_bounds(self):
        # Even max_tokens misses the deadline: the job keeps its
        # original bounds instead of demanding the impossible.
        demands = [
            demand("hopeless", a=-1.0, b=1000.0, hi=20, deadline=1.0),
            demand("fine", a=-1.0, b=1000.0, hi=200, deadline=100.0),
        ]
        grants = DeadlineAwarePolicy().allocate(demands, cap=100)
        assert int(np.sum(grants)) <= 100


class TestGlobalAllocator:
    def test_validates_inputs(self):
        allocator = GlobalAllocator(100)
        with pytest.raises(FleetError):
            allocator.allocate([])
        with pytest.raises(FleetError):
            allocator.allocate([demand("dup"), demand("dup")])
        with pytest.raises(FleetError):
            allocator.allocate([demand("a", lo=80), demand("b", lo=80)])

    def test_allocation_accounting(self):
        allocator = GlobalAllocator(100, policy="water_filling")
        allocation = allocator.allocate(
            [demand("a", hi=30), demand("b", hi=30)]
        )
        assert allocation.total_tokens == 60
        assert allocation.spare_tokens == 40
        by_job = allocation.by_job()
        assert set(by_job) == {"a", "b"}
        for grant in allocation.grants:
            d = next(
                x for x in [demand("a", hi=30), demand("b", hi=30)]
                if x.job_id == grant.job_id
            )
            assert grant.predicted_runtime == pytest.approx(
                d.pcc.runtime(grant.tokens)
            )

    def test_make_policy_registry(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name
        with pytest.raises(FleetError):
            make_policy("simulated_annealing")


@st.composite
def demand_sets(draw):
    n = draw(st.integers(1, 6))
    demands = []
    for i in range(n):
        a = draw(
            st.floats(-1.5, -0.05, allow_nan=False, allow_infinity=False)
        )
        b = draw(
            st.floats(1.0, 1000.0, allow_nan=False, allow_infinity=False)
        )
        lo = draw(st.integers(1, 8))
        hi = lo + draw(st.integers(0, 64))
        deadline = draw(
            st.one_of(st.none(), st.floats(0.5, 5000.0, allow_nan=False))
        )
        demands.append(
            JobDemand(
                job_id=f"j{i}",
                pcc=PowerLawPCC(a=a, b=b),
                min_tokens=lo,
                max_tokens=hi,
                deadline=deadline,
            )
        )
    cap = sum(d.min_tokens for d in demands) + draw(st.integers(0, 128))
    return demands, cap


class TestPolicyProperties:
    @given(case=demand_sets(), name=st.sampled_from(POLICY_NAMES))
    @settings(max_examples=60, deadline=None)
    def test_no_policy_exceeds_cap_or_bounds(self, case, name):
        demands, cap = case
        # GlobalAllocator.allocate post-validates every grant against
        # the demand bounds and the cap, raising FleetError on any
        # violation — so surviving the call IS the assertion.
        allocation = GlobalAllocator(cap, policy=name).allocate(demands)
        assert allocation.total_tokens <= cap


def fleet_job(job_id, arrival, lo=1, hi=64, runtime=None, a=-0.8, b=500.0):
    return FleetJob(
        job_id=job_id,
        arrival_time=arrival,
        demand=demand(job_id, a=a, b=b, lo=lo, hi=hi),
        runtime_fn=(None if runtime is None else (lambda tokens: runtime)),
    )


class TestFleetScheduler:
    def test_validation(self):
        scheduler = FleetScheduler(capacity=10)
        with pytest.raises(ExecutionError):
            scheduler.run([])
        with pytest.raises(ExecutionError):
            scheduler.run([fleet_job("big", 0, lo=11)])

    def test_uncontended_jobs_get_maximums(self):
        scheduler = FleetScheduler(capacity=1000)
        report = scheduler.run(
            [fleet_job("a", 0, hi=64), fleet_job("b", 0, hi=32)]
        )
        grants = {o.job_id: o.tokens for o in report.outcomes}
        assert grants == {"a": 64, "b": 32}
        assert report.mean_wait == 0.0

    def test_contended_admission_squeezes_grants(self):
        scheduler = FleetScheduler(capacity=40)
        report = scheduler.run(
            [fleet_job("a", 0, hi=64), fleet_job("b", 0, hi=64)]
        )
        assert sum(o.tokens for o in report.outcomes) <= 40
        assert report.mean_wait == 0.0  # both admitted immediately
        assert report.peak_committed_tokens <= 40

    def test_fcfs_order_preserved(self):
        # The first waiting job's floor does not fit, so the later
        # small job must NOT jump the queue (no backfilling).
        scheduler = FleetScheduler(capacity=10)
        report = scheduler.run(
            [
                fleet_job("hog", 0.0, lo=10, hi=10, runtime=100.0),
                fleet_job("big", 1.0, lo=8, hi=10, runtime=10.0),
                fleet_job("small", 2.0, lo=1, hi=2, runtime=10.0),
            ]
        )
        starts = {o.job_id: o.start_time for o in report.outcomes}
        assert starts["big"] == 100.0
        assert starts["small"] >= starts["big"]

    def test_reallocation_conserves_budget(self):
        scheduler = FleetScheduler(
            capacity=100, reallocate_running=True
        )
        jobs = [
            fleet_job(f"j{i}", float(5 * i), lo=5, hi=80)
            for i in range(8)
        ]
        report = scheduler.run(jobs)
        assert report.reallocations > 0
        assert report.peak_committed_tokens <= 100
        assert 0.0 < report.utilization <= 1.0

    def test_reallocation_never_slows_the_cluster(self):
        jobs = [
            fleet_job(f"j{i}", float(3 * i), lo=4, hi=90)
            for i in range(10)
        ]
        static = FleetScheduler(capacity=120).run(jobs)
        adaptive = FleetScheduler(
            capacity=120, reallocate_running=True
        ).run(jobs)
        assert adaptive.makespan <= static.makespan + 1e-9

    def test_runtime_fn_drives_durations(self):
        scheduler = FleetScheduler(capacity=50)
        report = scheduler.run([fleet_job("a", 0.0, runtime=42.0)])
        outcome = report.outcomes[0]
        assert outcome.finish_time - outcome.start_time == 42.0

    def test_report_carries_fleet_metadata(self):
        report = FleetScheduler(capacity=50, policy="knapsack").run(
            [fleet_job("a", 0.0)]
        )
        assert isinstance(report, FleetReport)
        assert isinstance(report, QueueReport)
        assert report.policy == "knapsack"


class TestTokenSecondsAccounting:
    def test_outcome_defaults_to_full_run_holding(self):
        outcome = QueueOutcome(
            job_id="a",
            arrival_time=0.0,
            start_time=2.0,
            finish_time=12.0,
            tokens=5,
        )
        assert outcome.token_seconds == 50.0

    def test_outcome_accepts_integrated_holdings(self):
        outcome = QueueOutcome(
            job_id="a",
            arrival_time=0.0,
            start_time=0.0,
            finish_time=10.0,
            tokens=8,
            token_seconds=35.0,
        )
        assert outcome.token_seconds == 35.0

    def test_report_totals_and_utilization(self):
        report = QueueReport(
            outcomes=(
                QueueOutcome("a", 0.0, 0.0, 10.0, tokens=5),
                QueueOutcome("b", 0.0, 0.0, 10.0, tokens=5),
            ),
            capacity=20,
        )
        assert report.total_token_seconds == 100.0
        assert report.utilization == pytest.approx(0.5)

    def test_scheduler_utilization_stays_physical_under_topups(self):
        # Re-allocation raises grants mid-run; the integrated holdings
        # must never exceed what the pool could physically supply.
        scheduler = FleetScheduler(
            capacity=60, reallocate_running=True
        )
        jobs = [
            fleet_job(f"j{i}", float(2 * i), lo=3, hi=60)
            for i in range(6)
        ]
        report = scheduler.run(jobs)
        assert report.total_token_seconds <= (
            report.capacity * report.makespan
        ) * (1 + 1e-9)


class TestCandidateGrids:
    def test_token_grid_endpoints_and_order(self):
        grid = token_grid(4, 256, num_points=10)
        assert grid[0] == 4 and grid[-1] == 256
        assert np.all(np.diff(grid) > 0)

    def test_pcc_grids_match_direct_evaluation(self):
        a = np.array([-0.8, -0.3])
        b = np.array([500.0, 900.0])
        lo = np.array([2, 4])
        hi = np.array([64, 128])
        grids = pcc_grids(a, b, lo, hi, num_points=8)
        assert len(grids) == 2
        for i, grid in enumerate(grids):
            expected = b[i] * np.power(
                grid.tokens.astype(float), a[i]
            )
            np.testing.assert_allclose(grid.runtimes, expected)

    def test_skyline_grid_is_monotone(self, peaky_skyline):
        grid = skyline_grid(peaky_skyline, 2, 120, num_points=12)
        assert np.all(np.diff(grid.runtimes) <= 1e-12)
        assert grid.min_tokens >= 2 and grid.max_tokens <= 120

    def test_concave_steps_have_decreasing_gains(self):
        grid = CandidateGrid(
            tokens=np.array([1, 2, 4, 8, 16], dtype=np.int64),
            runtimes=np.array([100.0, 60.0, 40.0, 30.0, 26.0]),
        )
        steps = grid.concave_steps()
        gains = [gain for _, _, gain in steps]
        assert gains == sorted(gains, reverse=True)
        assert all(gain > 0 for gain in gains)

    def test_grid_validation(self):
        with pytest.raises(FleetError):
            CandidateGrid(
                tokens=np.array([4, 2], dtype=np.int64),
                runtimes=np.array([1.0, 2.0]),
            )
        with pytest.raises(FleetError):
            CandidateGrid(
                tokens=np.array([2, 4], dtype=np.int64),
                runtimes=np.array([1.0, -2.0]),
            )


def recommendation(job_id, requested, optimal, a=-0.8, b=500.0):
    pcc = PowerLawPCC(a=a, b=b)
    return TokenRecommendation(
        job_id=job_id,
        pcc=pcc,
        requested_tokens=requested,
        optimal_tokens=optimal,
        predicted_runtime_at_requested=float(pcc.runtime(requested)),
        predicted_runtime_at_optimal=float(pcc.runtime(optimal)),
    )


class TestBudgetRecommendations:
    def test_fast_path_returns_inputs_unchanged(self):
        allocator = GlobalAllocator(100)
        recs = [recommendation("a", 100, 40), recommendation("b", 100, 50)]
        assert allocator.budget_recommendations(recs) == recs

    def test_squeeze_path_fits_cap_and_stays_consistent(self):
        allocator = GlobalAllocator(60)
        recs = [recommendation("a", 100, 50), recommendation("b", 100, 40)]
        granted = allocator.budget_recommendations(recs)
        total = sum(r.optimal_tokens for r in granted)
        assert total <= 60
        for raw, final in zip(recs, granted):
            assert 1 <= final.optimal_tokens <= raw.optimal_tokens
            assert final.predicted_runtime_at_optimal == pytest.approx(
                float(raw.pcc.runtime(final.optimal_tokens))
            )


class TestServingIntegration:
    def test_server_answers_budgeted_caches_raw(self, workload_jobs):
        from repro.serving import AllocationServer, ResponseStatus

        class OneShotPipeline:
            def score_batch(self, plans, requested_tokens, features=None):
                return [
                    recommendation(p.job_id, int(t), int(t) // 2)
                    for p, t in zip(plans, requested_tokens)
                ]

        plan = workload_jobs[0].plan
        allocator = GlobalAllocator(20)
        with AllocationServer(
            OneShotPipeline(), allocator=allocator
        ) as server:
            first = server.request(plan, 100)
            second = server.request(plan, 100)
        assert first.status is ResponseStatus.OK
        assert first.tokens <= 20  # budgeted under the cluster cap
        # The cache keeps the *raw* per-job answer: a grant squeezed by
        # one batch's contention must not poison later batches.
        assert second.status is ResponseStatus.CACHED
        assert second.tokens == 50


class FlakyScorer:
    """Batch scoring fails; per-job scoring rejects marked plans."""

    def __init__(self, bad_ids):
        self.bad_ids = set(bad_ids)

    def score_batch(self, plans, requested_tokens, features=None):
        raise FittingError("increasing PCC in batch")

    def score(self, plan, requested_tokens):
        if plan.job_id in self.bad_ids:
            raise FittingError("increasing PCC")
        return recommendation(plan.job_id, int(requested_tokens), 10)


class TestEvaluation:
    @pytest.fixture(scope="class")
    def records(self, repository):
        return [
            r
            for r in repository.records()
            if 2 <= r.requested_tokens <= 600
        ][:24]

    @pytest.fixture(scope="class")
    def recommendations(self, records):
        return [
            recommendation(
                r.job_id,
                r.requested_tokens,
                max(1, r.requested_tokens // 2),
                a=-0.7,
                b=float(
                    r.runtime / r.requested_tokens ** (-0.7)
                ),
            )
            for r in records
        ]

    def test_score_usable_drops_unscorable_records(self, records):
        bad = {records[1].job_id, records[3].job_id}
        kept, recs = score_usable(FlakyScorer(bad), records)
        assert len(kept) == len(records) - 2
        assert [r.job_id for r in kept] == [r.job_id for r in recs]
        assert not bad.intersection(r.job_id for r in kept)

    def test_build_demands_floors_and_deadlines(
        self, records, recommendations
    ):
        demands = build_demands(
            records, recommendations, deadline_slack=0.25
        )
        for record, rec, d in zip(records, recommendations, demands):
            assert 1 <= d.min_tokens <= d.max_tokens
            assert d.max_tokens == record.requested_tokens
            assert d.deadline == pytest.approx(
                1.25 * rec.predicted_runtime_at_requested
            )

    def test_compare_policies_covers_all_regimes(
        self, records, recommendations
    ):
        comparison = compare_policies(
            records,
            recommendations,
            policies=POLICY_NAMES,
            seed=11,
        )
        names = {o.name for o in comparison.outcomes}
        assert set(BASELINE_NAMES) <= names
        assert {f"fleet/{p}" for p in POLICY_NAMES} <= names
        for outcome in comparison.outcomes:
            assert outcome.makespan > 0
            assert 0.0 < outcome.utilization <= 1.0
        payload = comparison.to_json()
        assert payload["jobs"] == len(records)
        assert set(payload["policies"]) == names
        assert "makespan" in comparison.render()

    def test_comparison_get_unknown_name(
        self, records, recommendations
    ):
        comparison = compare_policies(
            records, recommendations, policies=("water_filling",)
        )
        with pytest.raises(FleetError):
            comparison.get("nonexistent")


class TestFleetStream:
    def job(self, job_id, arrival, lo, hi, a=-0.5, b=100.0):
        return FleetJob(
            job_id=job_id,
            arrival_time=arrival,
            demand=JobDemand(
                job_id=job_id,
                pcc=PowerLawPCC(a=a, b=b),
                min_tokens=lo,
                max_tokens=hi,
            ),
        )

    def test_stream_matches_batch_run(self):
        jobs = [
            self.job(f"j{i}", float(i * 3), 10 + i, 40 + i)
            for i in range(12)
        ]
        scheduler = FleetScheduler(120, reallocate_running=True)
        batch = scheduler.run(jobs)
        stream = scheduler.stream()
        for job in jobs:
            stream.advance(job.arrival_time)
            stream.submit(job)
        stream.drain()
        incremental = stream.report()
        assert incremental.outcomes == batch.outcomes
        assert (
            incremental.peak_committed_tokens
            == batch.peak_committed_tokens
        )
        assert incremental.reallocations == batch.reallocations

    def test_advance_returns_new_completions_in_finish_order(self):
        stream = FleetScheduler(100).stream()
        stream.submit(self.job("a", 0.0, 50, 50))
        stream.submit(self.job("b", 0.0, 50, 50))
        assert stream.advance(0.0) == []
        assert stream.in_flight == 2
        done = stream.advance(1e9)
        assert [o.job_id for o in done] == ["a", "b"]
        # Already-delivered outcomes are not replayed.
        assert stream.advance(2e9) == []

    def test_submissions_must_be_time_ordered(self):
        stream = FleetScheduler(100).stream()
        stream.submit(self.job("late", 10.0, 5, 5))
        with pytest.raises(ExecutionError, match="time order"):
            stream.submit(self.job("early", 5.0, 5, 5))

    def test_oversized_floor_rejected_at_submit(self):
        stream = FleetScheduler(10).stream()
        with pytest.raises(ExecutionError, match="only has 10"):
            stream.submit(self.job("big", 0.0, 11, 20))

    def test_drain_runs_the_tail_out(self):
        stream = FleetScheduler(10).stream()
        stream.submit(self.job("ok", 0.0, 10, 10))
        stream.submit(self.job("next", 1.0, 10, 10))
        assert len(stream.drain()) == 2
        assert stream.committed_tokens == 0

    def test_report_requires_completions(self):
        stream = FleetScheduler(10).stream()
        with pytest.raises(ExecutionError, match="no jobs"):
            stream.report()


class TestBackfillAdmission:
    """EASY backfill: small jobs slip past a blocked head-of-line job
    without ever delaying the head's earliest possible start."""

    def scenario(self):
        slow = PowerLawPCC(a=-0.5, b=100.0)
        fast = PowerLawPCC(a=-0.5, b=4.0)
        jobs = [
            # Fills 80 of the 100-token pool for ~11.2s.
            FleetJob("big", 0.0, JobDemand("big", slow, 80, 80)),
            # Blocked head: needs the whole pool.
            FleetJob("head", 1.0, JobDemand("head", slow, 100, 100)),
        ] + [
            # Short jobs that fit the 20 spare tokens right now.
            FleetJob(f"s{i}", 2.0, JobDemand(f"s{i}", fast, 5, 5))
            for i in range(4)
        ]
        return jobs

    def test_backfill_improves_mean_wait(self):
        jobs = self.scenario()
        fcfs = FleetScheduler(100, admission="fcfs").run(jobs)
        easy = FleetScheduler(100, admission="backfill").run(jobs)
        assert easy.mean_wait < fcfs.mean_wait
        assert easy.backfills == 4
        assert fcfs.backfills == 0
        assert easy.admission == "backfill"

    def test_head_start_is_not_delayed(self):
        jobs = self.scenario()
        start = {
            report_kind: {
                o.job_id: o.start_time
                for o in FleetScheduler(
                    100, admission=report_kind
                ).run(jobs).outcomes
            }
            for report_kind in ("fcfs", "backfill")
        }
        assert (
            start["backfill"]["head"] == start["fcfs"]["head"]
        )

    def test_long_candidates_are_not_backfilled(self):
        # Candidates whose own predicted run time crosses the shadow
        # time and exceed the head's spare tokens must keep waiting.
        slow = PowerLawPCC(a=-0.5, b=100.0)
        jobs = [
            FleetJob("big", 0.0, JobDemand("big", slow, 80, 80)),
            FleetJob("head", 1.0, JobDemand("head", slow, 100, 100)),
            FleetJob("laggard", 2.0, JobDemand("laggard", slow, 5, 5)),
        ]
        report = FleetScheduler(100, admission="backfill").run(jobs)
        assert report.backfills == 0

    def test_spare_tokens_admit_past_shadow_candidates(self):
        # Head leaves spare capacity at its shadow time; a long-running
        # small job may occupy exactly that spare without delaying it.
        slow = PowerLawPCC(a=-0.5, b=100.0)
        jobs = [
            FleetJob("big", 0.0, JobDemand("big", slow, 80, 80)),
            FleetJob("head", 1.0, JobDemand("head", slow, 90, 90)),
            FleetJob("laggard", 2.0, JobDemand("laggard", slow, 5, 5)),
        ]
        report = FleetScheduler(100, admission="backfill").run(jobs)
        assert report.backfills == 1
        start = {o.job_id: o.start_time for o in report.outcomes}
        assert start["laggard"] == 2.0

    def test_unknown_admission_order(self):
        with pytest.raises(FleetError, match="admission order"):
            FleetScheduler(100, admission="sjf")
