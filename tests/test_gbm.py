"""Unit tests for the gradient-boosting stand-in (trees + booster)."""

import numpy as np
import pytest

from repro.exceptions import ModelError, NotFittedError
from repro.ml.gbm import (
    BinMapper,
    BoosterParams,
    GammaDeviance,
    GradientBoostingRegressor,
    RegressionTree,
    SquaredError,
    TreeParams,
)


class TestBinMapper:
    def test_bins_monotone_with_values(self, rng):
        values = rng.uniform(0, 100, size=(500, 1))
        mapper = BinMapper(max_bins=16)
        binned = mapper.fit_transform(values)
        order = np.argsort(values[:, 0])
        assert np.all(np.diff(binned[order, 0].astype(int)) >= 0)
        assert binned.max() < 16

    def test_low_cardinality_column_gets_exact_bins(self):
        values = np.array([[0.0], [1.0], [2.0], [1.0]])
        mapper = BinMapper(max_bins=64)
        binned = mapper.fit_transform(values)
        assert len(np.unique(binned)) == 3

    def test_constant_column(self):
        values = np.full((10, 1), 7.0)
        binned = BinMapper().fit_transform(values)
        assert np.all(binned == 0)

    def test_transform_before_fit(self):
        with pytest.raises(ModelError):
            BinMapper().transform(np.ones((2, 2)))

    def test_rejects_bad_bins(self):
        with pytest.raises(ModelError):
            BinMapper(max_bins=1)

    def test_unseen_values_clamp_to_edges(self, rng):
        train = rng.uniform(0, 1, size=(100, 1))
        mapper = BinMapper(max_bins=8).fit(train)
        out = mapper.transform(np.array([[-5.0], [5.0]]))
        assert out[0, 0] == 0
        assert out[1, 0] == out.max()


class TestObjectives:
    def test_squared_error_gradients(self):
        obj = SquaredError()
        grad, hess = obj.gradients(np.array([1.0, 2.0]), np.array([3.0, 1.0]))
        assert list(grad) == [2.0, -1.0]
        assert list(hess) == [1.0, 1.0]

    def test_gamma_gradient_zero_at_optimum(self):
        obj = GammaDeviance()
        y = np.array([10.0, 20.0])
        raw = np.log(y)
        grad, hess = obj.gradients(y, raw)
        assert np.allclose(grad, 0.0)
        assert np.allclose(hess, 1.0)

    def test_gamma_rejects_nonpositive_targets(self):
        with pytest.raises(ModelError):
            GammaDeviance().base_score(np.array([1.0, 0.0]))

    def test_gamma_predict_is_exp(self):
        obj = GammaDeviance()
        assert obj.predict(np.array([0.0]))[0] == pytest.approx(1.0)


class TestRegressionTree:
    def test_single_split_recovers_step_function(self):
        features = np.arange(100, dtype=float).reshape(-1, 1)
        targets = np.where(features[:, 0] < 50, 1.0, 5.0)
        mapper = BinMapper(max_bins=32)
        binned = mapper.fit_transform(features)
        grad = (0.0 - targets)  # squared-error grad at raw=0
        hess = np.ones(100)
        tree = RegressionTree(TreeParams(max_depth=1, reg_lambda=0.0))
        tree.fit(binned, grad, hess, num_bins=32)
        predictions = tree.predict(binned)
        assert predictions[0] == pytest.approx(1.0)
        assert predictions[-1] == pytest.approx(5.0)
        assert tree.num_leaves == 2

    def test_depth_zero_like_leaf_only(self):
        binned = np.zeros((10, 1), dtype=np.uint8)
        tree = RegressionTree(TreeParams(max_depth=1))
        tree.fit(binned, np.ones(10), np.ones(10), num_bins=2)
        # Constant feature: no split possible -> single leaf.
        assert tree.num_leaves == 1

    def test_min_samples_leaf_respected(self):
        features = np.arange(10, dtype=float).reshape(-1, 1)
        targets = np.where(features[:, 0] < 1, 100.0, 0.0)  # 1-sample split
        binned = BinMapper(max_bins=16).fit_transform(features)
        tree = RegressionTree(TreeParams(max_depth=3, min_samples_leaf=3))
        tree.fit(binned, -targets, np.ones(10), num_bins=16)
        leaves = tree.predict(binned)
        values, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 3

    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            RegressionTree(TreeParams()).predict(np.zeros((1, 1), dtype=np.uint8))


class TestBooster:
    def test_learns_linear_function(self, rng):
        features = rng.uniform(0, 10, size=(1500, 4))
        targets = 2.0 * features[:, 0] + features[:, 1] + 5.0
        model = GradientBoostingRegressor(
            BoosterParams(n_estimators=80, max_depth=4),
            objective="squared_error",
        )
        model.fit(features, targets)
        predictions = model.predict(features)
        mae = np.abs(predictions - targets).mean()
        assert mae < 0.5

    def test_gamma_objective_positive_predictions(self, rng):
        features = rng.uniform(0, 10, size=(800, 3))
        targets = np.exp(0.3 * features[:, 0]) + 1.0
        model = GradientBoostingRegressor(
            BoosterParams(n_estimators=50, max_depth=3), objective="gamma"
        )
        model.fit(features, targets)
        assert np.all(model.predict(features) > 0)

    def test_training_loss_decreases(self, rng):
        features = rng.uniform(0, 10, size=(500, 3))
        targets = features[:, 0] * 3 + 10
        model = GradientBoostingRegressor(
            BoosterParams(n_estimators=30), objective="gamma"
        )
        model.fit(features, targets)
        assert model.train_scores_[-1] < model.train_scores_[0]

    def test_early_stopping(self, rng):
        features = rng.uniform(0, 10, size=(400, 3))
        targets = features[:, 0] + 1.0 + rng.normal(0, 0.01, 400)
        params = BoosterParams(
            n_estimators=300, early_stopping_rounds=5, learning_rate=0.3
        )
        model = GradientBoostingRegressor(params, objective="squared_error")
        model.fit(
            features[:300], targets[:300],
            eval_set=(features[300:], targets[300:]),
        )
        assert model.num_trees < 300

    def test_subsample_and_colsample(self, rng):
        features = rng.uniform(0, 10, size=(300, 5))
        targets = features[:, 0] + 2.0
        model = GradientBoostingRegressor(
            BoosterParams(n_estimators=20, subsample=0.7, colsample=0.6),
            objective="squared_error",
            seed=1,
        )
        model.fit(features, targets)
        assert np.abs(model.predict(features) - targets).mean() < 1.0

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            GradientBoostingRegressor().predict(np.ones((2, 2)))

    def test_unknown_objective(self):
        with pytest.raises(ModelError):
            GradientBoostingRegressor(objective="poisson9000")

    def test_deterministic_given_seed(self, rng):
        features = rng.uniform(0, 10, size=(300, 3))
        targets = features[:, 0] + 1.0
        params = BoosterParams(n_estimators=10, subsample=0.8)
        a = GradientBoostingRegressor(params, seed=5).fit(features, targets)
        b = GradientBoostingRegressor(params, seed=5).fit(features, targets)
        assert np.allclose(a.predict(features), b.predict(features))

    def test_param_validation(self):
        with pytest.raises(ModelError):
            BoosterParams(n_estimators=0)
        with pytest.raises(ModelError):
            BoosterParams(learning_rate=0)
        with pytest.raises(ModelError):
            BoosterParams(subsample=0)
