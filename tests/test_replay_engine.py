"""Tests for the closed-loop replay engine.

The expensive property — one seed, one report, bit for bit — is checked
on a deliberately small replay (tiny bootstrap, short window) so the
whole file stays CI-friendly. Pool-safety and job-conservation are
additionally property-tested at the FleetStream layer, where thousands
of synthetic streams are cheap.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReplayError
from repro.fleet import FleetJob, FleetScheduler, JobDemand
from repro.pcc.curve import PowerLawPCC
from repro.replay import (
    ArrivalSpec,
    ReplayConfig,
    ReplayEngine,
    TenantSpec,
    default_tenants,
    run_replay,
)

SMALL = dict(duration_s=150.0, bootstrap_jobs=15, seed=11)


@pytest.fixture(scope="module")
def small_report():
    return run_replay(ReplayConfig(**SMALL, policy="water_filling"))


class TestDeterminism:
    def test_same_seed_same_report(self, small_report):
        again = run_replay(ReplayConfig(**SMALL, policy="water_filling"))
        assert again.signature() == small_report.signature()
        assert again.to_json() == small_report.to_json()

    def test_workers_do_not_change_the_report(self, small_report):
        parallel = run_replay(
            ReplayConfig(**SMALL, policy="water_filling", workers=4)
        )
        assert parallel.signature() == small_report.signature()

    def test_different_seed_changes_the_report(self, small_report):
        other = run_replay(
            ReplayConfig(
                duration_s=150.0, bootstrap_jobs=15, seed=12,
                policy="water_filling",
            )
        )
        assert other.signature() != small_report.signature()

    def test_arrival_timeline_identical_across_workers(self):
        # Timestamps, tenant assignments, and generated plans — checked
        # below the bootstrap so the probe is fast.
        def timeline(workers):
            engine = ReplayEngine(
                ReplayConfig(**SMALL, workers=workers)
            )
            return [
                (e.time, e.tenant_index, e.job.job_id, e.exec_seed,
                 len(e.job.plan.nodes), e.job.requested_tokens)
                for e in engine._arrivals()
            ]
        assert timeline(1) == timeline(3)


class TestConservation:
    def test_arrived_equals_completed_plus_rejected(self, small_report):
        assert small_report.arrived > 0
        assert (
            small_report.arrived
            == small_report.completed + small_report.rejected
        )

    def test_per_tenant_conservation(self, small_report):
        for tenant in small_report.tenants:
            assert tenant.arrived == tenant.completed + tenant.rejected

    def test_every_response_counted(self, small_report):
        assert (
            sum(count for _, count in small_report.response_mix)
            == small_report.arrived
        )

    def test_pool_never_exceeded(self, small_report):
        assert (
            small_report.peak_committed_tokens <= small_report.capacity
        )

    def test_tight_capacity_rejects_but_conserves(self):
        report = run_replay(
            ReplayConfig(**SMALL, policy="default", capacity=40)
        )
        assert report.rejected > 0
        assert report.arrived == report.completed + report.rejected
        assert report.peak_committed_tokens <= 40


class TestPolicies:
    @pytest.mark.parametrize("policy", ["default", "peak", "tasq"])
    def test_baselines_run(self, policy):
        report = run_replay(ReplayConfig(**SMALL, policy=policy))
        assert report.completed > 0
        assert report.policy == policy
        # Baselines are fixed-grant: the allocator never tops them up.
        assert report.reallocations == 0

    def test_unknown_policy(self):
        with pytest.raises(ReplayError, match="unknown replay policy"):
            ReplayConfig(policy="lottery")

    def test_backfill_admission_is_reported(self):
        report = run_replay(
            ReplayConfig(**SMALL, policy="knapsack", admission="backfill")
        )
        assert report.admission == "backfill"


class TestClosedLoop:
    def test_drift_is_tracked_per_completion(self, small_report):
        assert len(small_report.drift_timeline) > 0
        observed = [
            d for d in small_report.drift_timeline if d is not None
        ]
        assert all(d >= 0 for d in observed)

    def test_retraining_fires_and_stays_deterministic(self):
        config = ReplayConfig(
            duration_s=400.0,
            bootstrap_jobs=15,
            seed=11,
            policy="water_filling",
            retrain=True,
            drift_window=10,
            drift_min_observations=5,
            drift_patience=2,
        )
        first = run_replay(config)
        assert first.retrain_events > 0
        assert run_replay(config).signature() == first.signature()

    def test_tenant_slo_attainment_in_unit_range(self, small_report):
        for tenant in small_report.tenants:
            assert 0.0 <= tenant.slo_attainment <= 1.0


class TestEngineValidation:
    def test_duplicate_tenant_names(self):
        tenants = (
            TenantSpec(name="a"),
            TenantSpec(name="a", family="streaming"),
        )
        with pytest.raises(ReplayError, match="unique"):
            ReplayEngine(ReplayConfig(), tenants)

    def test_no_arrivals_raises(self):
        tenants = (
            TenantSpec(
                name="quiet",
                arrival=ArrivalSpec(kind="trace", trace=(1e9,)),
            ),
        )
        engine = ReplayEngine(ReplayConfig(**SMALL), tenants)
        with pytest.raises(ReplayError, match="no arrivals"):
            engine._arrivals()

    def test_bootstrap_floor(self):
        with pytest.raises(ReplayError, match="at least 10"):
            ReplayConfig(bootstrap_jobs=3)


# ----------------------------------------------------------------------
# Stream-level replay properties (cheap enough for hypothesis).
# ----------------------------------------------------------------------
@st.composite
def job_stream(draw):
    capacity = draw(st.integers(min_value=10, max_value=200))
    n = draw(st.integers(min_value=1, max_value=25))
    jobs = []
    clock = 0.0
    for i in range(n):
        clock += draw(
            st.floats(min_value=0.0, max_value=30.0, allow_nan=False)
        )
        lo = draw(st.integers(min_value=1, max_value=capacity))
        hi = draw(st.integers(min_value=lo, max_value=capacity))
        jobs.append(
            FleetJob(
                job_id=f"j{i:03d}",
                arrival_time=clock,
                demand=JobDemand(
                    job_id=f"j{i:03d}",
                    pcc=PowerLawPCC(
                        a=-draw(
                            st.floats(min_value=0.1, max_value=0.95)
                        ),
                        b=draw(
                            st.floats(min_value=10.0, max_value=2000.0)
                        ),
                    ),
                    min_tokens=lo,
                    max_tokens=hi,
                ),
            )
        )
    return capacity, jobs


class TestStreamProperties:
    @settings(max_examples=60, deadline=None)
    @given(data=job_stream(), admission=st.sampled_from(["fcfs", "backfill"]))
    def test_replay_conserves_jobs_and_respects_cap(self, data, admission):
        capacity, jobs = data
        stream = FleetScheduler(
            capacity, admission=admission
        ).stream()
        submitted = 0
        completed = []
        for job in jobs:
            completed.extend(stream.advance(job.arrival_time))
            stream.submit(job)
            submitted += 1
        completed.extend(stream.drain())
        # Conservation: everything submitted eventually completes
        # (floors always fit the pool by construction, so no rejects).
        assert len(completed) == submitted
        assert sorted(o.job_id for o in completed) == sorted(
            j.job_id for j in jobs
        )
        report = stream.report()
        # Cap safety, and grants within each job's declared bounds.
        assert report.peak_committed_tokens <= capacity
        bounds = {j.job_id: j.demand for j in jobs}
        for outcome in report.outcomes:
            demand = bounds[outcome.job_id]
            assert (
                demand.min_tokens
                <= outcome.tokens
                <= demand.max_tokens
            )
            assert outcome.start_time >= outcome.arrival_time
            assert outcome.finish_time > outcome.start_time

    @settings(max_examples=40, deadline=None)
    @given(data=job_stream())
    def test_committed_tokens_bounded_at_every_event(self, data):
        capacity, jobs = data
        stream = FleetScheduler(capacity).stream()
        for job in jobs:
            stream.advance(job.arrival_time)
            stream.submit(job)
            assert 0 <= stream.committed_tokens <= capacity
        stream.drain()
        assert stream.committed_tokens == 0
        assert stream.in_flight == 0
