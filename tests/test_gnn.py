"""Unit tests for the GNN building blocks (Figure 10)."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.features import GraphSample, normalized_adjacency
from repro.ml import (
    AttentionPooling,
    GNNEncoder,
    GraphConvolution,
    Tensor,
    pad_graph_batch,
)


def _sample(num_nodes, feature_dim=6, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(num_nodes, feature_dim))
    adjacency = np.zeros((num_nodes, num_nodes))
    for i in range(num_nodes - 1):
        adjacency[i, i + 1] = 1.0
    return GraphSample(
        node_features=features, adjacency=normalized_adjacency(adjacency)
    )


class TestPadding:
    def test_pads_to_largest(self):
        batch = pad_graph_batch([_sample(3), _sample(5)])
        assert batch.node_features.shape == (2, 5, 6)
        assert batch.adjacency.shape == (2, 5, 5)
        assert batch.node_mask.sum() == 8.0
        assert np.all(batch.node_features[0, 3:] == 0)

    def test_mask_marks_real_nodes(self):
        batch = pad_graph_batch([_sample(2), _sample(4)])
        assert list(batch.node_mask[0]) == [1, 1, 0, 0]
        assert list(batch.node_mask[1]) == [1, 1, 1, 1]

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            pad_graph_batch([])

    def test_rejects_mixed_widths(self):
        with pytest.raises(ModelError):
            pad_graph_batch([_sample(3, feature_dim=4), _sample(3, feature_dim=6)])


class TestGraphConvolution:
    def test_output_shape(self, rng):
        layer = GraphConvolution(6, 10, rng)
        batch = pad_graph_batch([_sample(4), _sample(4)])
        out = layer.forward_graph(
            Tensor(batch.node_features), Tensor(batch.adjacency)
        )
        assert out.shape == (2, 4, 10)

    def test_aggregates_neighbours(self, rng):
        """A node's output depends on its neighbours, not only itself."""
        layer = GraphConvolution(6, 10, rng)
        sample = _sample(3)
        modified = sample.node_features.copy()
        modified[0] += 10.0  # perturb node 0
        out_base = layer.forward_graph(
            Tensor(sample.node_features[None]), Tensor(sample.adjacency[None])
        ).numpy()
        out_mod = layer.forward_graph(
            Tensor(modified[None]), Tensor(sample.adjacency[None])
        ).numpy()
        # Node 1 (neighbour of node 0) changes even though its own features
        # did not.
        assert not np.allclose(out_base[0, 1], out_mod[0, 1])


class TestAttentionPooling:
    def test_output_shape(self, rng):
        pooling = AttentionPooling(8, rng)
        states = Tensor(rng.normal(size=(3, 5, 8)))
        mask = np.ones((3, 5))
        out = pooling.forward_graph(states, mask)
        assert out.shape == (3, 8)

    def test_padding_excluded(self, rng):
        """Padding nodes must not influence the graph embedding."""
        pooling = AttentionPooling(4, rng)
        real = rng.normal(size=(1, 3, 4))
        padded = np.concatenate([real, 1000 * np.ones((1, 2, 4))], axis=1)
        mask_real = np.ones((1, 3))
        mask_padded = np.concatenate([np.ones((1, 3)), np.zeros((1, 2))], axis=1)
        out_real = pooling.forward_graph(Tensor(real), mask_real).numpy()
        out_padded = pooling.forward_graph(Tensor(padded), mask_padded).numpy()
        assert np.allclose(out_real, out_padded)

    def test_rejects_empty_graph(self, rng):
        pooling = AttentionPooling(4, rng)
        states = Tensor(np.ones((1, 2, 4)))
        with pytest.raises(ModelError):
            pooling.forward_graph(states, np.zeros((1, 2)))


class TestGNNEncoder:
    def test_encode_shape(self, rng):
        encoder = GNNEncoder(6, (12, 8), rng)
        batch = pad_graph_batch([_sample(3), _sample(7)])
        out = encoder.encode(batch)
        assert out.shape == (2, 8)
        assert encoder.output_dim == 8

    def test_parameters_collected(self, rng):
        encoder = GNNEncoder(6, (12, 8), rng)
        count = sum(p.data.size for p in encoder.parameters())
        expected = (6 * 12 + 12) + (12 * 8 + 8) + 8 * 8
        assert count == expected

    def test_gradients_reach_all_parameters(self, rng):
        encoder = GNNEncoder(6, (5,), rng)
        batch = pad_graph_batch([_sample(4)])
        loss = encoder.encode(batch).abs().sum()
        loss.backward()
        for p in encoder.parameters():
            assert p.grad is not None
            assert np.any(p.grad != 0)

    def test_needs_layers(self, rng):
        with pytest.raises(ModelError):
            GNNEncoder(6, (), rng)

    def test_permutation_consistency(self, rng):
        """Graphs in a batch are encoded independently."""
        encoder = GNNEncoder(6, (10,), rng)
        a, b = _sample(4, seed=1), _sample(6, seed=2)
        together = encoder.encode(pad_graph_batch([a, b])).numpy()
        swapped = encoder.encode(pad_graph_batch([b, a])).numpy()
        assert np.allclose(together[0], swapped[1], atol=1e-10)
        assert np.allclose(together[1], swapped[0], atol=1e-10)
