"""repro.parallel: deterministic pmap, seed spawning, obs propagation."""

import multiprocessing

import numpy as np
import pytest

from repro.models.dataset import build_dataset
from repro.obs import get_registry, reset_registry, trace
from repro.parallel import START_METHOD, pmap, resolve_workers, spawn_seeds
from repro.scope.generator import WorkloadGenerator
from repro.scope.repository import run_workload


def _square(x):
    return x * x


def _traced_square(x):
    with trace.span("test.work", item=x):
        get_registry().counter("test_items").increment()
        get_registry().histogram("test_values", bounds=[1, 10, 100]).record(x)
    return x * x


def _plans_equal(a, b):
    if set(a.nodes) != set(b.nodes):
        return False
    fields = (
        "kind", "children", "partitioning", "output_cardinality",
        "leaf_input_cardinality", "children_input_cardinality",
        "average_row_length", "cost_subtree", "cost_exclusive",
        "cost_total", "num_partitions", "num_partitioning_columns",
        "num_sort_columns", "true_cost",
    )
    return all(
        getattr(a.nodes[k], f) == getattr(b.nodes[k], f)
        for k in a.nodes
        for f in fields
    )


class TestPmap:
    def test_serial_path_matches_list_comprehension(self):
        items = list(range(17))
        assert pmap(_square, items, workers=1) == [x * x for x in items]

    def test_parallel_preserves_input_order(self):
        items = list(range(53))
        assert pmap(_square, items, workers=4) == [x * x for x in items]

    def test_parallel_matches_serial(self):
        items = list(range(23))
        assert pmap(_square, items, workers=3) == pmap(_square, items, workers=1)

    def test_empty_and_single_item(self):
        assert pmap(_square, [], workers=4) == []
        assert pmap(_square, [7], workers=4) == [49]

    def test_explicit_chunk_size(self):
        items = list(range(19))
        assert pmap(_square, items, workers=2, chunk_size=3) == [
            x * x for x in items
        ]

    def test_start_method_is_supported(self):
        assert START_METHOD in multiprocessing.get_all_start_methods()


class TestWorkers:
    def test_resolve_defaults_to_cpu_count(self):
        assert resolve_workers(None) == multiprocessing.cpu_count()
        assert resolve_workers(0) == multiprocessing.cpu_count()
        assert resolve_workers(-3) == multiprocessing.cpu_count()

    def test_resolve_passes_positive_through(self):
        assert resolve_workers(5) == 5


class TestSpawnSeeds:
    def test_deterministic_and_independent_of_batching(self):
        a = spawn_seeds(42, 8)
        b = spawn_seeds(42, 8)
        assert len(a) == 8
        for left, right in zip(a, b):
            assert np.array_equal(
                left.generate_state(4), right.generate_state(4)
            )

    def test_distinct_children(self):
        states = {tuple(s.generate_state(4)) for s in spawn_seeds(0, 16)}
        assert len(states) == 16

    def test_tuple_entropy(self):
        a = spawn_seeds((3, 7), 2)
        b = spawn_seeds((3, 8), 2)
        assert not np.array_equal(
            a[0].generate_state(4), b[0].generate_state(4)
        )

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestPipelineDeterminism:
    """Parallel offline stages must be bit-identical to serial ones."""

    def test_generate_parallel_equals_serial(self):
        serial = WorkloadGenerator(seed=11).generate(24)
        parallel = WorkloadGenerator(seed=11).generate(24, workers=4)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.job_id == b.job_id
            assert a.requested_tokens == b.requested_tokens
            assert a.recurring == b.recurring
            assert _plans_equal(a.plan, b.plan)

    def test_generate_job_consistent_with_generate(self):
        batch = WorkloadGenerator(seed=11).generate(4)
        one_gen = WorkloadGenerator(seed=11)
        singles = [one_gen.generate_job(0) for _ in range(4)]
        for a, b in zip(batch, singles):
            assert a.job_id == b.job_id
            assert _plans_equal(a.plan, b.plan)

    def test_run_workload_parallel_equals_serial(self):
        jobs = WorkloadGenerator(seed=5).generate(16)
        serial = run_workload(jobs, seed=2)
        parallel = run_workload(jobs, seed=2, workers=4)
        for a, b in zip(serial.records(), parallel.records()):
            assert a.job_id == b.job_id
            assert np.array_equal(a.skyline.usage, b.skyline.usage)

    def test_build_dataset_parallel_equals_serial(self):
        jobs = WorkloadGenerator(seed=5).generate(16)
        repo = run_workload(jobs, seed=2)
        serial = build_dataset(repo)
        parallel = build_dataset(repo, workers=4)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.job_id == b.job_id
            assert a.target_pcc == b.target_pcc
            assert np.array_equal(a.job_features, b.job_features)
            assert np.array_equal(
                a.graph.node_features, b.graph.node_features
            )
            assert a.point_observations == b.point_observations


class TestObsPropagation:
    """Satellite: span/metric emission must be safe under fork/spawn."""

    def teardown_method(self):
        trace.disable()
        trace.reset()
        reset_registry()

    def test_worker_spans_merge_into_parent(self):
        trace.reset()
        reset_registry()
        trace.enable()
        with trace.span("test.parent"):
            results = pmap(_traced_square, list(range(8)), workers=2)
        assert results == [x * x for x in range(8)]

        spans = trace.spans()
        work = [s for s in spans if s.name == "test.work"]
        parent = next(s for s in spans if s.name == "test.parent")
        assert len(work) == 8
        # Worker roots re-attach under the parent's open span, and every
        # remapped id is unique within the merged buffer.
        assert all(s.parent_id == parent.span_id for s in work)
        assert len({s.span_id for s in spans}) == len(spans)

    def test_worker_metrics_merge_into_parent_registry(self):
        trace.reset()
        reset_registry()
        pmap(_traced_square, list(range(10)), workers=2)
        snapshot = get_registry().snapshot()
        assert snapshot["counters"]["test_items"] == 10
        assert snapshot["histograms"]["test_values"]["count"] == 10

    def test_parallel_metrics_equal_serial_metrics(self):
        reset_registry()
        pmap(_traced_square, list(range(12)), workers=1)
        serial = get_registry().snapshot()
        reset_registry()
        pmap(_traced_square, list(range(12)), workers=3)
        parallel = get_registry().snapshot()
        assert serial["counters"] == parallel["counters"]
        assert (
            serial["histograms"]["test_values"]["count"]
            == parallel["histograms"]["test_values"]["count"]
        )

    def test_disabled_trace_stays_disabled_in_workers(self):
        trace.disable()
        trace.reset()
        pmap(_traced_square, list(range(6)), workers=2)
        assert trace.spans() == []
