"""Property-based tests: explanation rendering and drift monitoring."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcc import PowerLawPCC
from repro.tasq import render_pcc_chart
from repro.tasq.monitoring import PredictionMonitor


class TestChartProperties:
    @given(
        st.floats(min_value=-2.0, max_value=0.0),
        st.floats(min_value=0.5, max_value=1e6),
        st.integers(min_value=2, max_value=5000),
    )
    @settings(max_examples=60)
    def test_never_crashes_and_has_fixed_shape(self, a, b, max_tokens):
        pcc = PowerLawPCC(a=a, b=b)
        chart = render_pcc_chart(pcc, max_tokens=float(max_tokens) + 1.0,
                                 width=30, height=8)
        lines = chart.splitlines()
        assert len(lines) == 10
        body = lines[:8]
        assert all(len(line) == len(body[0]) for line in body)
        assert any("*" in line for line in body)

    @given(
        st.floats(min_value=-2.0, max_value=-0.05),
        st.floats(min_value=1.0, max_value=1e4),
        st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=40)
    def test_marks_always_land_on_the_curve_row(self, a, b, fraction):
        pcc = PowerLawPCC(a=a, b=b)
        max_tokens = 500.0
        mark = max(1.0, fraction * max_tokens)
        chart = render_pcc_chart(
            pcc, max_tokens=max_tokens, marks={"O": mark},
            width=30, height=8,
        )
        assert "O" in chart


class TestMonitorProperties:
    @given(st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=1e5),
            st.floats(min_value=1.0, max_value=1e5),
        ),
        min_size=1,
        max_size=60,
    ))
    @settings(max_examples=50)
    def test_rolling_error_bounded_by_window_extremes(self, pairs):
        monitor = PredictionMonitor(window=10, min_observations=2)
        errors = []
        for predicted, actual in pairs:
            monitor.observe(predicted, actual)
            errors.append(abs(predicted - actual) / actual * 100.0)
        window_errors = errors[-10:]
        rolling = monitor.rolling_median_ape
        assert min(window_errors) - 1e-9 <= rolling <= max(window_errors) + 1e-9

    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=2, max_value=30))
    @settings(max_examples=40)
    def test_signal_never_fires_early(self, patience, good_runs):
        monitor = PredictionMonitor(
            window=50, error_threshold=10.0,
            patience=patience, min_observations=2,
        )
        for _ in range(good_runs):
            monitor.observe(100.0, 100.0)  # perfect predictions
        assert not monitor.needs_retraining
        # Breaches accumulate only after the error actually crosses.
        breaches_needed = patience
        for _ in range(breaches_needed + 2):
            monitor.observe(1000.0, 100.0)
        # The window median may still be dragged down by the good runs;
        # the signal fires only when both conditions hold.
        if monitor.needs_retraining:
            assert monitor.snapshot().consecutive_breaches >= patience
