"""Unit tests for the TASQ prediction models (Section 4.4, Tables 4-6)."""

import numpy as np
import pytest

from repro.exceptions import ModelError, NotFittedError
from repro.models import (
    GNNPCCModel,
    NNPCCModel,
    TrainConfig,
    XGBoostPL,
    XGBoostRuntimeModel,
    XGBoostSS,
    build_dataset,
    evaluate_model,
    evaluation_table,
    reference_window,
)
from repro.ml.losses import LF1, LF3


@pytest.fixture(scope="module")
def fitted_xgb(dataset):
    return XGBoostRuntimeModel(seed=0).fit(dataset)


@pytest.fixture(scope="module")
def fitted_nn(dataset):
    return NNPCCModel(train_config=TrainConfig(epochs=25), seed=0).fit(dataset)


@pytest.fixture(scope="module")
def fitted_gnn(dataset):
    config = TrainConfig(epochs=6, batch_size=32, learning_rate=2e-3)
    return GNNPCCModel(train_config=config, seed=0).fit(dataset)


class TestDatasetBuilding:
    def test_one_example_per_usable_job(self, repository, dataset):
        usable = [r for r in repository if r.requested_tokens >= 2]
        assert len(dataset) == len(usable)

    def test_targets_are_non_increasing_curves(self, dataset):
        targets = dataset.target_matrix()
        assert np.all(targets[:, 0] <= 1e-9)  # a <= 0
        assert np.all(np.isfinite(targets))

    def test_point_rows_expand_observations(self, dataset):
        rows, targets = dataset.point_rows()
        expected = sum(len(e.point_observations) for e in dataset)
        assert rows.shape == (expected, 52)  # 51 job features + log tokens
        assert targets.shape == (expected,)
        assert np.all(targets > 0)

    def test_matrix_views_aligned(self, dataset):
        assert dataset.job_feature_matrix().shape[0] == len(dataset)
        assert dataset.observed_tokens().shape[0] == len(dataset)
        assert dataset.observed_runtimes().shape[0] == len(dataset)
        assert len(dataset.graph_samples()) == len(dataset)


class TestReferenceWindow:
    def test_window_spans_40_percent(self):
        grid = reference_window(100.0)
        assert grid[0] == pytest.approx(60.0)
        assert grid[-1] == pytest.approx(140.0)

    def test_window_floor(self):
        assert np.all(reference_window(1.0) >= 1.0)

    def test_rejects_bad_reference(self):
        with pytest.raises(ModelError):
            reference_window(0.0)


class TestXGBoostModels:
    def test_point_predictions_positive(self, fitted_xgb, dataset):
        predictions = fitted_xgb.predict_runtime_at(
            dataset, dataset.observed_tokens()
        )
        assert np.all(predictions > 0)

    def test_point_predictions_reasonable(self, fitted_xgb, dataset):
        predictions = fitted_xgb.predict_runtime_at(
            dataset, dataset.observed_tokens()
        )
        true = dataset.observed_runtimes()
        median_ape = np.median(np.abs(predictions - true) / true)
        assert median_ape < 0.5  # in-sample: should be well under 50%

    def test_ss_smooths_curves(self, dataset):
        model = XGBoostSS(seed=0).fit(dataset)
        grids = [reference_window(t) for t in dataset.observed_tokens()]
        curves = model.predict_curves(dataset, grids)
        assert len(curves) == len(dataset)
        assert all(c.shape == g.shape for c, g in zip(curves, grids))
        assert all(np.all(c > 0) for c in curves)

    def test_ss_has_no_parameters(self, dataset):
        model = XGBoostSS(seed=0).fit(dataset)
        assert model.predict_parameters(dataset) is None
        assert model.predict_pccs(dataset) is None

    def test_pl_produces_parameters(self, dataset):
        model = XGBoostPL(seed=0).fit(dataset)
        params = model.predict_parameters(dataset)
        assert params.shape == (len(dataset), 2)
        pccs = model.predict_pccs(dataset)
        assert len(pccs) == len(dataset)

    def test_pl_cannot_guarantee_monotonicity(self, dataset):
        """The headline Table 4-6 observation: no sign guarantee for PL."""
        assert not XGBoostPL().guarantees_monotonic

    def test_predict_before_fit(self, dataset):
        with pytest.raises(NotFittedError):
            XGBoostSS().predict_runtime_at(dataset, dataset.observed_tokens())

    def test_rejects_nonpositive_tokens(self, fitted_xgb, dataset):
        bad = dataset.observed_tokens().copy()
        bad[0] = 0.0
        with pytest.raises(ModelError):
            fitted_xgb.predict_runtime_at(dataset, bad)


class TestNNModel:
    def test_guaranteed_non_increasing(self, fitted_nn, dataset):
        params = fitted_nn.predict_parameters(dataset)
        assert np.all(params[:, 0] <= 0)
        for pcc in fitted_nn.predict_pccs(dataset):
            assert pcc.is_non_increasing

    def test_loss_decreases(self, fitted_nn):
        history = fitted_nn.loss_history_
        assert history[-1] < history[0]

    def test_parameter_count_near_paper(self, fitted_nn):
        """Table 7 reports 2,216 parameters for the NN."""
        assert 1800 <= fitted_nn.num_parameters() <= 2600

    def test_curves_follow_parameters(self, fitted_nn, dataset):
        grids = [np.array([10.0, 20.0, 40.0])] * len(dataset)
        curves = fitted_nn.predict_curves(dataset, grids)
        params = fitted_nn.predict_parameters(dataset)
        expected = np.exp(params[0, 1] + params[0, 0] * np.log(grids[0]))
        assert np.allclose(curves[0], expected)

    def test_lf3_requires_xgb(self, dataset):
        model = NNPCCModel(loss=LF3(), train_config=TrainConfig(epochs=1))
        with pytest.raises(ModelError):
            model.fit(dataset)

    def test_lf3_with_xgb(self, dataset, fitted_xgb):
        model = NNPCCModel(
            loss=LF3(),
            train_config=TrainConfig(epochs=2),
            xgb_model=fitted_xgb,
        )
        model.fit(dataset)
        assert model.predict_parameters(dataset).shape == (len(dataset), 2)

    def test_predict_before_fit(self, dataset):
        with pytest.raises(NotFittedError):
            NNPCCModel().predict_parameters(dataset)

    def test_curves_need_one_grid_per_example(self, fitted_nn, dataset):
        with pytest.raises(ModelError):
            fitted_nn.predict_curves(dataset, [np.array([1.0, 2.0])])


class TestGNNModel:
    def test_guaranteed_non_increasing(self, fitted_gnn, dataset):
        params = fitted_gnn.predict_parameters(dataset)
        assert np.all(params[:, 0] <= 0)

    def test_parameter_count_near_paper(self, fitted_gnn):
        """Table 7 reports 19,210 parameters for the GNN."""
        assert 15_000 <= fitted_gnn.num_parameters() <= 23_000

    def test_gnn_heavier_than_nn(self, fitted_gnn, fitted_nn):
        assert fitted_gnn.num_parameters() > 5 * fitted_nn.num_parameters()

    def test_chunked_prediction_matches_order(self, fitted_gnn, dataset):
        """Size-sorted chunking must return rows in the original order."""
        once = fitted_gnn.predict_parameters(dataset)
        again = fitted_gnn.predict_parameters(dataset)
        assert np.allclose(once, again)


class TestEvaluation:
    def test_nn_pattern_is_100_percent(self, fitted_nn, dataset):
        evaluation = evaluate_model(fitted_nn, dataset)
        assert evaluation.pattern_non_increasing == 1.0
        assert evaluation.curve_param_mae is not None

    def test_ss_pattern_below_100(self, dataset):
        model = XGBoostSS(seed=0).fit(dataset)
        evaluation = evaluate_model(model, dataset)
        assert evaluation.curve_param_mae is None
        assert evaluation.pattern_non_increasing < 1.0

    def test_table_rendering(self, fitted_nn, dataset):
        evaluation = evaluate_model(fitted_nn, dataset)
        table = evaluation_table([evaluation])
        assert "NN" in table
        assert "%" in table

    def test_custom_ground_truth(self, fitted_nn, dataset):
        true = dataset.observed_runtimes() * 2
        doubled = evaluate_model(fitted_nn, dataset, true_runtimes=true)
        base = evaluate_model(fitted_nn, dataset)
        assert doubled.runtime_median_ape != base.runtime_median_ape
