"""Smoke checks for the example scripts.

Executing the examples takes minutes (they train models), so the test
suite only verifies each script parses, imports everything it references,
and exposes a ``main`` entry point. The benchmark/CI story for actually
*running* them is the examples' own ``__main__`` guard.
"""

import ast
import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable minimum


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
class TestExampleScript:
    def test_parses(self, path):
        ast.parse(path.read_text())

    def test_has_main_and_guard(self, path):
        tree = ast.parse(path.read_text())
        functions = {
            node.name
            for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions
        assert '__main__' in path.read_text()

    def test_imports_resolve(self, path):
        """Loading the module executes its imports (but not main)."""
        spec = importlib.util.spec_from_file_location(path.stem, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(module.main)

    def test_has_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} needs a docstring"
