"""Unit tests for the Jockey/Amdahl baseline simulators (Section 6.3)."""

import numpy as np
import pytest

from repro.arepas import AREPAS
from repro.baselines import AmdahlSkylineSimulator, StageLevelSimulator
from repro.exceptions import SimulationError
from repro.scope import ClusterExecutor, decompose_stages
from repro.skyline import Skyline


class TestStageLevelSimulator:
    def test_runtime_decreases_with_tokens(self, workload_jobs):
        graph = decompose_stages(workload_jobs[0].plan)
        simulator = StageLevelSimulator()
        runtimes = simulator.sweep(graph, np.array([2, 4, 8, 16, 64]))
        assert np.all(np.diff(runtimes) <= 1e-9)

    def test_floor_at_critical_path(self, workload_jobs):
        graph = decompose_stages(workload_jobs[0].plan)
        simulator = StageLevelSimulator()
        many_tokens = simulator.runtime(graph, 100_000)
        critical = graph.critical_path_work(simulator.cost_model)
        assert many_tokens == pytest.approx(critical)

    def test_tracks_executor_roughly(self, workload_jobs):
        """Compile-time stage model should land near the real executor."""
        executor = ClusterExecutor()
        simulator = StageLevelSimulator()
        errors = []
        for job in workload_jobs[:10]:
            graph = decompose_stages(job.plan)
            tokens = max(2, job.requested_tokens // 2)
            true = executor.execute(graph, tokens).makespan
            predicted = simulator.runtime(graph, tokens)
            errors.append(abs(predicted - true) / true)
        assert np.median(errors) < 0.6

    def test_conservative_on_linear_chains(self, workload_jobs):
        """With no parallel branches, wave counting is never optimistic.

        (On branched plans the model ignores token contention between
        concurrent stages and may be optimistic — one of its documented
        limitations versus the executor.)
        """
        executor = ClusterExecutor()
        simulator = StageLevelSimulator()
        checked = 0
        for job in workload_jobs:
            if len(job.plan.sources) != 1:
                continue
            graph = decompose_stages(job.plan)
            tokens = max(2, job.requested_tokens)
            true = executor.execute(graph, tokens).makespan
            assert simulator.runtime(graph, tokens) >= true - 1e-6
            checked += 1
            if checked == 5:
                break
        assert checked > 0

    def test_rejects_zero_tokens(self, workload_jobs):
        graph = decompose_stages(workload_jobs[0].plan)
        with pytest.raises(SimulationError):
            StageLevelSimulator().runtime(graph, 0)


class TestAmdahlSkylineSimulator:
    def test_calibration_splits_area(self):
        sky = Skyline([1, 1, 10, 10])
        serial, parallel = AmdahlSkylineSimulator().calibrate(sky)
        assert serial == 2.0
        assert parallel == 20.0

    def test_runtime_formula(self):
        sky = Skyline([1, 1, 10, 10])
        simulator = AmdahlSkylineSimulator()
        assert simulator.runtime(sky, 10) == pytest.approx(2 + 2)
        assert simulator.runtime(sky, 1) == pytest.approx(2 + 20)

    def test_sweep_matches_pointwise(self, peaky_skyline):
        simulator = AmdahlSkylineSimulator()
        grid = np.array([5.0, 20.0, 80.0])
        swept = simulator.sweep(peaky_skyline, grid)
        pointwise = [simulator.runtime(peaky_skyline, t) for t in grid]
        assert np.allclose(swept, pointwise)

    def test_rejects_bad_tokens(self, peaky_skyline):
        with pytest.raises(SimulationError):
            AmdahlSkylineSimulator().runtime(peaky_skyline, 0)

    def test_arepas_beats_amdahl_on_shaped_skylines(self, peaky_skyline):
        """AREPAS keeps under-threshold structure; Amdahl smears it.

        Ground truth proxy: AREPAS *is* exact under area preservation for
        allocations at/above the peak, where the job is unchanged. Amdahl
        predicts a speedup that never materialises for peaky jobs.
        """
        tokens = peaky_skyline.peak  # nothing should change
        arepas_runtime = AREPAS().runtime(peaky_skyline, tokens)
        amdahl_runtime = AmdahlSkylineSimulator().runtime(peaky_skyline, tokens)
        true_runtime = peaky_skyline.duration
        assert arepas_runtime == true_runtime
        assert abs(amdahl_runtime - true_runtime) > 0
