"""Unit tests for AREPAS validation metrics (Figures 12-13, Table 3)."""

import numpy as np
import pytest

from repro.arepas import (
    area_pair_differences,
    count_outlier_executions,
    error_summary,
    match_fraction_curve,
    simulation_errors,
)
from repro.arepas.validation import JobSimulationError
from repro.exceptions import SimulationError
from repro.skyline import Skyline


def _sky(area, length=10):
    return Skyline(np.full(length, area / length))


class TestAreaPairDifferences:
    def test_identical_executions(self):
        diffs = area_pair_differences([_sky(100), _sky(100)])
        assert diffs == [0.0]

    def test_percentage_relative_to_smaller(self):
        diffs = area_pair_differences([_sky(100), _sky(130)])
        assert diffs[0] == pytest.approx(30.0)

    def test_pair_count(self):
        skylines = [_sky(100), _sky(110), _sky(120), _sky(130)]
        assert len(area_pair_differences(skylines)) == 6  # C(4, 2)

    def test_needs_two_executions(self):
        with pytest.raises(SimulationError):
            area_pair_differences([_sky(100)])


class TestMatchFractionCurve:
    def test_cdf_monotone_in_tolerance(self):
        jobs = [[_sky(100), _sky(105)], [_sky(100), _sky(160)]]
        curve = match_fraction_curve(jobs, np.array([1.0, 10.0, 100.0]))
        assert np.all(np.diff(curve) >= 0)
        assert curve[-1] == 1.0

    def test_values(self):
        jobs = [[_sky(100), _sky(120)]]
        curve = match_fraction_curve(jobs, np.array([10.0, 30.0]))
        assert list(curve) == [0.0, 1.0]

    def test_single_execution_jobs_skipped(self):
        jobs = [[_sky(100)], [_sky(100), _sky(100)]]
        curve = match_fraction_curve(jobs, np.array([5.0]))
        assert curve[0] == 1.0

    def test_no_pairs_raises(self):
        with pytest.raises(SimulationError):
            match_fraction_curve([[_sky(100)]], np.array([5.0]))


class TestOutlierCounting:
    def test_no_outliers(self):
        assert count_outlier_executions([_sky(100), _sky(101)], 30) == 0

    def test_one_outlier(self):
        skylines = [_sky(100), _sky(100), _sky(100), _sky(200)]
        assert count_outlier_executions(skylines, 30) == 1

    def test_tolerance_matters(self):
        skylines = [_sky(100), _sky(100), _sky(120)]
        assert count_outlier_executions(skylines, 30) == 0
        assert count_outlier_executions(skylines, 10) == 1

    def test_single_execution_has_no_outliers(self):
        assert count_outlier_executions([_sky(100)], 30) == 0

    def test_rejects_bad_tolerance(self):
        with pytest.raises(SimulationError):
            count_outlier_executions([_sky(1), _sky(1)], 0)


class TestSimulationErrors:
    def test_perfect_prediction_for_area_preserving_job(self):
        """A flat job squeezed to half tokens doubles — AREPAS is exact."""
        reference = Skyline(np.full(10, 8.0))
        flights = [("j1", reference, 8.0, [(4.0, 20.0)])]
        errors = simulation_errors(flights)
        assert errors[0].median_error == pytest.approx(0.0)

    def test_error_magnitude(self):
        reference = Skyline(np.full(10, 8.0))
        # True runtime 25 vs simulated 20 -> 20% error.
        flights = [("j1", reference, 8.0, [(4.0, 25.0)])]
        errors = simulation_errors(flights)
        assert errors[0].median_error == pytest.approx(20.0)

    def test_jobs_without_targets_skipped(self):
        reference = Skyline(np.full(10, 8.0))
        errors = simulation_errors([("j1", reference, 8.0, [])])
        assert errors == []

    def test_rejects_bad_reference_tokens(self):
        reference = Skyline(np.full(10, 8.0))
        with pytest.raises(SimulationError):
            simulation_errors([("j1", reference, 0.0, [(4.0, 20.0)])])

    def test_rejects_bad_true_runtime(self):
        reference = Skyline(np.full(10, 8.0))
        with pytest.raises(SimulationError):
            simulation_errors([("j1", reference, 8.0, [(4.0, 0.0)])])


class TestErrorSummary:
    def test_summary_fields(self):
        errors = [
            JobSimulationError("a", (10.0, 20.0)),
            JobSimulationError("b", (5.0,)),
        ]
        summary = error_summary(errors)
        assert summary["jobs"] == 2
        assert summary["median_ape"] == pytest.approx(10.0)
        assert summary["mean_ape"] == pytest.approx(10.0)
        assert summary["worst"] == pytest.approx(15.0)

    def test_empty_raises(self):
        with pytest.raises(SimulationError):
            error_summary([])
