"""Unit tests for the composite loss functions LF1-LF3 (Section 4.5)."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml import LF1, LF2, LF3, CompositeLoss, LossInputs, Tensor


@pytest.fixture()
def inputs():
    return LossInputs(
        target_params=np.array([[-1.0, 5.0], [-0.5, 6.0]]),
        param_scale=np.array([0.75, 5.5]),
        log_tokens=np.log(np.array([10.0, 20.0])),
        true_runtime=np.array([100.0, 50.0]),
        xgb_runtime=np.array([90.0, 55.0]),
    )


class TestLossInputs:
    def test_validation(self):
        with pytest.raises(ModelError):
            LossInputs(
                target_params=np.ones((2, 3)),
                param_scale=np.array([1.0, 1.0]),
                log_tokens=np.zeros(2),
                true_runtime=np.ones(2),
            )
        with pytest.raises(ModelError):
            LossInputs(
                target_params=np.ones((2, 2)),
                param_scale=np.array([0.0, 1.0]),
                log_tokens=np.zeros(2),
                true_runtime=np.ones(2),
            )
        with pytest.raises(ModelError):
            LossInputs(
                target_params=np.ones((2, 2)),
                param_scale=np.array([1.0, 1.0]),
                log_tokens=np.zeros(2),
                true_runtime=np.array([1.0, 0.0]),
            )

    def test_subset(self, inputs):
        sub = inputs.subset(np.array([1]))
        assert sub.target_params.shape == (1, 2)
        assert sub.true_runtime[0] == 50.0
        assert sub.xgb_runtime[0] == 55.0


class TestLF1:
    def test_zero_at_perfect_prediction(self, inputs):
        loss = LF1()(Tensor(inputs.target_params), inputs)
        assert loss.item() == pytest.approx(0.0)

    def test_scaled_mae(self, inputs):
        predictions = inputs.target_params + np.array([[0.75, 0.0], [0.0, 5.5]])
        loss = LF1()(Tensor(predictions), inputs)
        # Each perturbed entry contributes exactly 1 after scaling;
        # mean over 4 entries = 0.5.
        assert loss.item() == pytest.approx(0.5)

    def test_ignores_runtime(self, inputs):
        """LF1 is flat in run-time error: only parameters matter."""
        predictions = Tensor(inputs.target_params)
        value = LF1()(predictions, inputs).item()
        inputs2 = LossInputs(
            target_params=inputs.target_params,
            param_scale=inputs.param_scale,
            log_tokens=inputs.log_tokens,
            true_runtime=inputs.true_runtime * 100,
        )
        assert LF1()(predictions, inputs2).item() == pytest.approx(value)


class TestLF2:
    def test_penalizes_runtime_error(self, inputs):
        # Perfect parameters -> LF1 part zero; runtime part depends on the
        # implied runtimes vs the ground truth.
        predictions = Tensor(inputs.target_params)
        lf2 = LF2(runtime_weight=1.0)(predictions, inputs)
        implied = np.exp(
            inputs.target_params[:, 1]
            + inputs.target_params[:, 0] * inputs.log_tokens
        )
        expected = np.abs(implied - inputs.true_runtime) / inputs.true_runtime
        assert lf2.item() == pytest.approx(expected.mean())

    def test_weight_scales_component(self, inputs):
        predictions = Tensor(inputs.target_params)
        light = LF2(runtime_weight=0.1)(predictions, inputs).item()
        heavy = LF2(runtime_weight=1.0)(predictions, inputs).item()
        assert heavy == pytest.approx(10 * light)


class TestLF3:
    def test_requires_xgb_predictions(self, inputs):
        no_xgb = LossInputs(
            target_params=inputs.target_params,
            param_scale=inputs.param_scale,
            log_tokens=inputs.log_tokens,
            true_runtime=inputs.true_runtime,
        )
        with pytest.raises(ModelError):
            LF3()(Tensor(inputs.target_params), no_xgb)

    def test_transfer_term_added(self, inputs):
        predictions = Tensor(inputs.target_params)
        lf2 = LF2(runtime_weight=0.5)(predictions, inputs).item()
        lf3 = LF3(runtime_weight=0.5, transfer_weight=0.25)(
            predictions, inputs
        ).item()
        assert lf3 > lf2  # the xgb disagreement adds loss


class TestCompositeLoss:
    def test_rejects_bad_weights(self):
        with pytest.raises(ModelError):
            CompositeLoss((0.0, 1.0, 0.0))  # params component must be active
        with pytest.raises(ModelError):
            CompositeLoss((1.0, -1.0, 0.0))

    def test_gradients_flow_through_runtime_term(self, inputs):
        predictions = Tensor(inputs.target_params.copy(), requires_grad=True)
        loss = LF2(runtime_weight=1.0)(predictions, inputs)
        loss.backward()
        assert predictions.grad is not None
        assert np.any(predictions.grad != 0)

    def test_needs_xgb_flag(self):
        assert LF3().needs_xgb
        assert not LF2().needs_xgb
        assert not LF1().needs_xgb
