"""Unit tests for feature/target scalers."""

import numpy as np
import pytest

from repro.exceptions import FeaturizationError, NotFittedError
from repro.features import StandardScaler, TargetScaler, log1p_continuous


class TestLog1p:
    def test_transform(self):
        assert log1p_continuous(np.array([0.0]))[0] == 0.0
        assert log1p_continuous(np.array([np.e - 1]))[0] == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(FeaturizationError):
            log1p_continuous(np.array([-1.0]))


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        matrix = rng.normal(5, 3, size=(200, 4))
        scaled = StandardScaler().fit_transform(matrix)
        assert np.allclose(scaled.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1, atol=1e-9)

    def test_constant_columns_no_nan(self):
        matrix = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(matrix)
        assert np.all(np.isfinite(scaled))
        assert np.allclose(scaled[:, 0], 0.0)

    def test_roundtrip(self, rng):
        matrix = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(matrix)
        restored = scaler.inverse_transform(scaler.transform(matrix))
        assert np.allclose(restored, matrix)

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_rejects_1d(self):
        with pytest.raises(FeaturizationError):
            StandardScaler().fit(np.ones(5))

    def test_train_statistics_applied_to_test(self, rng):
        train = rng.normal(0, 1, size=(100, 2))
        test = rng.normal(10, 1, size=(100, 2))
        scaler = StandardScaler().fit(train)
        scaled_test = scaler.transform(test)
        # Test data scaled by train stats keeps its offset.
        assert scaled_test.mean() > 5


class TestTargetScaler:
    def test_balances_magnitudes(self):
        targets = np.column_stack([np.full(10, -0.5), np.full(10, 8.0)])
        scaled = TargetScaler().fit_transform(targets)
        assert np.allclose(np.abs(scaled).mean(axis=0), 1.0)

    def test_roundtrip(self, rng):
        targets = rng.normal(size=(30, 2))
        scaler = TargetScaler().fit(targets)
        assert np.allclose(
            scaler.inverse_transform(scaler.transform(targets)), targets
        )

    def test_preserves_signs(self):
        targets = np.array([[-1.0, 2.0], [-3.0, 4.0]])
        scaled = TargetScaler().fit_transform(targets)
        assert np.all(scaled[:, 0] < 0)
        assert np.all(scaled[:, 1] > 0)

    def test_zero_column_safe(self):
        targets = np.zeros((5, 2))
        scaled = TargetScaler().fit_transform(targets)
        assert np.all(np.isfinite(scaled))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            TargetScaler().transform(np.ones((2, 2)))
