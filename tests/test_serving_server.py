"""Behavioural tests for the AllocationServer.

A stub scoring pipeline (instant, deterministic, optionally failing or
gated on an event) isolates the server mechanics — micro-batching,
caching, shedding, circuit breaking, fallback, feedback, hot swap —
from model quality and training cost.
"""

import threading
import time

import numpy as np
import pytest

from repro.exceptions import ModelError, ServingError
from repro.models.base import PCCPredictor
from repro.pcc.curve import PowerLawPCC
from repro.scope.signatures import plan_signature
from repro.serving import (
    AllocationServer,
    BreakerState,
    HistoricalMedianFallback,
    PassthroughFallback,
    ResponseStatus,
    ServerConfig,
)
from repro.tasq import ModelStore, ScoringPipeline, TokenRecommendation


def _recommend(plan, tokens, a=-0.8, b=500.0):
    pcc = PowerLawPCC(a=a, b=b)
    best = max(1, int(tokens) // 2)
    return TokenRecommendation(
        job_id=plan.job_id,
        pcc=pcc,
        requested_tokens=int(tokens),
        optimal_tokens=best,
        predicted_runtime_at_requested=float(pcc.runtime(tokens)),
        predicted_runtime_at_optimal=float(pcc.runtime(best)),
    )


class StubPipeline:
    """Scores instantly; can fail N times and/or block on a gate."""

    def __init__(self, fail_times=0, gate=None):
        self.calls: list[int] = []
        self.gate = gate
        self._fail_remaining = fail_times
        self._lock = threading.Lock()

    def score_batch(self, plans, requested_tokens, features=None):
        with self._lock:
            self.calls.append(len(plans))
            failing = self._fail_remaining > 0
            if failing:
                self._fail_remaining -= 1
        if self.gate is not None:
            self.gate.wait(timeout=10.0)
        if failing:
            raise ModelError("injected model failure")
        return [
            _recommend(plan, tokens)
            for plan, tokens in zip(plans, requested_tokens)
        ]


class StubPredictor(PCCPredictor):
    """A fitted parametric predictor with constant PCC parameters."""

    name = "stub"

    def __init__(self, a=-0.8, log_b=6.0):
        super().__init__()
        self.a = a
        self.log_b = log_b
        self._fitted = True

    def fit(self, dataset):
        return self

    def predict_runtime_at(self, dataset, tokens):
        return np.full(len(dataset), np.exp(self.log_b))

    def predict_curves(self, dataset, grids):
        return [np.exp(self.log_b) * np.power(g, self.a) for g in grids]

    def predict_parameters(self, dataset):
        return np.tile([self.a, self.log_b], (len(dataset), 1))


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


@pytest.fixture()
def plans(workload_jobs):
    return [job.plan for job in workload_jobs]


class TestLifecycle:
    def test_submit_requires_running(self, plans):
        server = AllocationServer(StubPipeline())
        with pytest.raises(ServingError):
            server.submit(plans[0], 10)

    def test_context_manager(self, plans):
        server = AllocationServer(StubPipeline())
        with server:
            assert server.is_running
            response = server.request(plans[0], 10)
            assert response.status is ResponseStatus.OK
        assert not server.is_running

    def test_stop_rejects_queued_requests(self, plans):
        gate = threading.Event()
        pipeline = StubPipeline(gate=gate)
        config = ServerConfig(workers=1, max_queue=8, max_batch_size=1)
        server = AllocationServer(pipeline, config).start()
        first = server.submit(plans[0], 10)
        assert wait_until(lambda: len(pipeline.calls) >= 1)
        stuck = server.submit(plans[1], 10)
        gate.set()
        server.stop()
        assert first.result(timeout=1.0).status is ResponseStatus.OK
        response = stuck.result(timeout=1.0)
        # either the worker drained it before exiting, or stop() rejected it
        assert response.status in (ResponseStatus.OK, ResponseStatus.REJECTED)


class TestScoringPaths:
    def test_ok_response(self, plans):
        with AllocationServer(StubPipeline()) as server:
            response = server.request(plans[0], 100)
        assert response.status is ResponseStatus.OK
        assert response.recommendation.optimal_tokens == 50
        assert response.tokens == 50
        assert response.reason is None
        assert response.latency_s >= 0.0

    def test_repeat_request_served_from_cache(self, plans):
        pipeline = StubPipeline()
        with AllocationServer(pipeline) as server:
            first = server.request(plans[0], 100)
            second = server.request(plans[0], 100)
            third = server.request(plans[0], 200)  # different size: misses
        assert first.status is ResponseStatus.OK
        assert second.status is ResponseStatus.CACHED
        assert second.tokens == first.tokens
        assert second.job_id == plans[0].job_id
        assert third.status is ResponseStatus.OK
        assert sum(pipeline.calls) == 2  # the cached hit never hit the model

    def test_microbatch_coalescing(self, plans):
        """N requests queued behind a busy worker → one score_batch call."""
        gate = threading.Event()
        pipeline = StubPipeline(gate=gate)
        config = ServerConfig(
            workers=1, max_batch_size=8, max_batch_wait_s=0.05
        )
        with AllocationServer(pipeline, config) as server:
            blocker = server.submit(plans[0], 10)
            assert wait_until(lambda: len(pipeline.calls) == 1)
            queued = [server.submit(plans[i], 10) for i in range(1, 5)]
            gate.set()
            responses = [f.result(timeout=5.0) for f in [blocker, *queued]]
        assert all(r.status is ResponseStatus.OK for r in responses)
        assert pipeline.calls == [1, 4]

    def test_batch_respects_max_size(self, plans):
        gate = threading.Event()
        pipeline = StubPipeline(gate=gate)
        config = ServerConfig(
            workers=1, max_batch_size=3, max_batch_wait_s=0.05, max_queue=32
        )
        with AllocationServer(pipeline, config) as server:
            blocker = server.submit(plans[0], 10)
            assert wait_until(lambda: len(pipeline.calls) == 1)
            queued = [server.submit(plans[i], 10) for i in range(1, 7)]
            gate.set()
            for f in [blocker, *queued]:
                f.result(timeout=5.0)
        assert max(pipeline.calls) <= 3
        assert pipeline.calls[1] == 3  # first drain takes a full batch

    def test_works_with_real_scoring_pipeline(self, plans):
        pipeline = ScoringPipeline(StubPredictor())
        with AllocationServer(pipeline) as server:
            response = server.request(plans[0], 100)
        assert response.status is ResponseStatus.OK
        assert 1 <= response.tokens <= 100


class TestAdmission:
    def test_queue_full_sheds_with_backpressure(self, plans):
        gate = threading.Event()
        pipeline = StubPipeline(gate=gate)
        config = ServerConfig(workers=1, max_queue=2, max_batch_size=1)
        with AllocationServer(pipeline, config) as server:
            blocker = server.submit(plans[0], 10)
            assert wait_until(lambda: len(pipeline.calls) == 1)
            fits = [server.submit(plans[i], 10) for i in range(1, 3)]
            shed = server.submit(plans[3], 10)
            assert shed.done()  # rejected synchronously, no queue wait
            response = shed.result(timeout=1.0)
            assert response.status is ResponseStatus.REJECTED
            assert response.reason == "queue_full"
            assert response.recommendation is None
            gate.set()
            for f in [blocker, *fits]:
                assert f.result(timeout=5.0).status is ResponseStatus.OK
        counters = server.metrics.snapshot()["counters"]
        assert counters["rejected_queue_full"] == 1

    def test_rate_limit_rejection(self, plans):
        config = ServerConfig(
            workers=1, rate_limit_rps=0.001, rate_limit_burst=2
        )
        with AllocationServer(StubPipeline(), config) as server:
            responses = [server.request(plans[i], 10) for i in range(4)]
        statuses = [r.status for r in responses]
        assert statuses == [
            ResponseStatus.OK,
            ResponseStatus.OK,
            ResponseStatus.REJECTED,
            ResponseStatus.REJECTED,
        ]
        assert [r.reason for r in responses[2:]] == ["rate_limited"] * 2
        counters = server.metrics.snapshot()["counters"]
        assert counters["rejected_rate_limited"] == 2


class TestFailureContainment:
    def test_breaker_opens_and_serves_fallback(self, plans):
        """Forced model failures must never surface as exceptions."""
        pipeline = StubPipeline(fail_times=1000)
        config = ServerConfig(
            workers=1,
            breaker_failure_threshold=3,
            breaker_recovery_s=60.0,
            max_batch_size=1,
        )
        with AllocationServer(pipeline, config) as server:
            responses = [server.request(plans[i], 10) for i in range(6)]
            assert server.breaker.state is BreakerState.OPEN
        assert all(r.status is ResponseStatus.FALLBACK for r in responses)
        assert all(r.recommendation is not None for r in responses)
        assert [r.reason for r in responses[:3]] == ["model_error"] * 3
        assert [r.reason for r in responses[3:]] == ["breaker_open"] * 3
        # passthrough fallback: the requested allocation is preserved
        assert all(r.tokens == 10 for r in responses)
        # breaker-open requests short-circuit before the queue/model
        assert len(pipeline.calls) == 3

    def test_cache_still_answers_while_breaker_open(self, plans):
        pipeline = StubPipeline()
        config = ServerConfig(workers=1, breaker_recovery_s=60.0)
        with AllocationServer(pipeline, config) as server:
            cached = server.request(plans[0], 10)
            assert cached.status is ResponseStatus.OK
            for _ in range(5):
                server.breaker.record_failure()
            assert server.breaker.state is BreakerState.OPEN
            hit = server.request(plans[0], 10)
            miss = server.request(plans[1], 10)
        assert hit.status is ResponseStatus.CACHED
        assert miss.status is ResponseStatus.FALLBACK

    def test_breaker_recovers_through_half_open(self, plans):
        pipeline = StubPipeline(fail_times=3)
        config = ServerConfig(
            workers=1,
            breaker_failure_threshold=3,
            breaker_recovery_s=0.05,
            breaker_half_open_probes=1,
            max_batch_size=1,
        )
        with AllocationServer(pipeline, config) as server:
            for i in range(3):
                assert (
                    server.request(plans[i], 10).status
                    is ResponseStatus.FALLBACK
                )
            assert server.breaker.state is BreakerState.OPEN
            time.sleep(0.08)  # recovery window elapses → half-open probe
            probe = server.request(plans[3], 10)
            assert probe.status is ResponseStatus.OK
            assert server.breaker.state is BreakerState.CLOSED

    def test_batch_poisoned_by_one_bad_request(self, plans):
        """A failing batch is retried per item: good requests still score."""

        class PoisonedPipeline(StubPipeline):
            def score_batch(self, batch_plans, requested_tokens, features=None):
                with self._lock:
                    self.calls.append(len(batch_plans))
                if any(t == 13 for t in requested_tokens):
                    raise ModelError("unlucky request")
                return [
                    _recommend(p, t)
                    for p, t in zip(batch_plans, requested_tokens)
                ]

        blocker_pipeline = PoisonedPipeline()
        config = ServerConfig(workers=1, max_batch_size=8, max_batch_wait_s=0.05)
        with AllocationServer(blocker_pipeline, config) as server:
            # hold the worker with an in-flight batch so others coalesce
            hold = threading.Event()
            original = blocker_pipeline.score_batch

            def gated_first_call(*args, **kwargs):
                blocker_pipeline.score_batch = original
                hold.wait(timeout=5.0)
                return original(*args, **kwargs)

            blocker_pipeline.score_batch = gated_first_call
            blocker = server.submit(plans[0], 10)
            assert wait_until(lambda: blocker_pipeline.score_batch is original)
            good = server.submit(plans[1], 11)
            bad = server.submit(plans[2], 13)
            also_good = server.submit(plans[3], 12)
            hold.set()
            assert blocker.result(5.0).status is ResponseStatus.OK
            assert good.result(5.0).status is ResponseStatus.OK
            assert also_good.result(5.0).status is ResponseStatus.OK
            poisoned = bad.result(5.0)
        assert poisoned.status is ResponseStatus.FALLBACK
        assert poisoned.reason == "model_error"

    def test_deadline_exceeded_gets_fallback(self, plans):
        gate = threading.Event()
        pipeline = StubPipeline(gate=gate)
        config = ServerConfig(
            workers=1, max_batch_size=1, deadline_s=0.01
        )
        with AllocationServer(pipeline, config) as server:
            blocker = server.submit(plans[0], 10)
            assert wait_until(lambda: len(pipeline.calls) == 1)
            late = server.submit(plans[1], 10)
            time.sleep(0.03)  # let the queued request's deadline expire
            gate.set()
            assert blocker.result(5.0).status is ResponseStatus.OK
            response = late.result(5.0)
        assert response.status is ResponseStatus.FALLBACK
        assert response.reason == "deadline"


class TestFallbackPolicies:
    def test_passthrough_preserves_request(self, plans):
        response = PassthroughFallback().recommend(plans[0], 37)
        assert response.optimal_tokens == 37
        assert response.job_id == plans[0].job_id

    def test_historical_median_uses_signature_history(self, repository):
        fallback = HistoricalMedianFallback(repository)
        assert fallback.known_signatures > 0
        record = repository.records()[0]
        signature = plan_signature(record.plan)
        peaks = [
            float(r.peak_tokens)
            for r in repository
            if plan_signature(r.plan) == signature
        ]
        expected = max(1, int(round(float(np.median(peaks)))))
        rec = fallback.recommend(record.plan, 10_000)
        assert rec.optimal_tokens == expected

    def test_historical_median_caps_at_request(self, repository):
        record = repository.records()[0]
        fallback = HistoricalMedianFallback(repository)
        rec = fallback.recommend(record.plan, 1)
        assert rec.optimal_tokens == 1

    def test_unknown_signature_passes_through(self, repository):
        fresh_plan = None
        from repro.scope import WorkloadGenerator

        known = {plan_signature(r.plan) for r in repository}
        for job in WorkloadGenerator(seed=999).generate(40):
            if plan_signature(job.plan) not in known:
                fresh_plan = job.plan
                break
        assert fresh_plan is not None
        fallback = HistoricalMedianFallback(repository)
        assert fallback.recommend(fresh_plan, 123).optimal_tokens == 123

    def test_server_uses_repository_fallback(self, plans, repository):
        pipeline = StubPipeline(fail_times=1000)
        config = ServerConfig(workers=1, breaker_failure_threshold=1)
        record = repository.records()[0]
        with AllocationServer(pipeline, config, repository=repository) as server:
            response = server.request(record.plan, 10_000)
        assert response.status is ResponseStatus.FALLBACK
        assert response.tokens < 10_000  # historical median, not passthrough


class TestFeedbackAndMetrics:
    def test_completion_feeds_monitor(self, plans):
        with AllocationServer(StubPipeline()) as server:
            response = server.request(plans[0], 100)
            predicted = response.recommendation.predicted_runtime_at_optimal
            server.record_completion(response, predicted * 2.0)
        gauges = server.metrics.snapshot()["gauges"]
        assert gauges["monitor_observations"] == 1
        assert gauges["monitor_rolling_median_ape"] == pytest.approx(50.0)
        assert gauges["monitor_needs_retraining"] is False

    def test_fallback_completion_skips_monitor(self, plans):
        pipeline = StubPipeline(fail_times=1000)
        config = ServerConfig(workers=1, breaker_failure_threshold=1)
        with AllocationServer(pipeline, config) as server:
            response = server.request(plans[0], 100)
            server.record_completion(response, 123.0)
        gauges = server.metrics.snapshot()["gauges"]
        assert gauges["monitor_observations"] == 0
        counters = server.metrics.snapshot()["counters"]
        assert counters["completions"] == 1

    def test_retraining_signal_appears_in_snapshot(self, plans):
        from repro.tasq import PredictionMonitor

        monitor = PredictionMonitor(
            window=10, error_threshold=10.0, patience=2, min_observations=2
        )
        with AllocationServer(StubPipeline(), monitor=monitor) as server:
            response = server.request(plans[0], 100)
            for _ in range(5):
                server.record_completion(
                    response,
                    response.recommendation.predicted_runtime_at_optimal * 3,
                )
        gauges = server.metrics.snapshot()["gauges"]
        assert gauges["monitor_needs_retraining"] is True

    def test_snapshot_counters_and_histograms(self, plans):
        with AllocationServer(StubPipeline()) as server:
            server.request(plans[0], 100)
            server.request(plans[0], 100)
        snap = server.metrics.snapshot()
        assert snap["counters"]["requests_total"] == 2
        assert snap["counters"]["responses_ok"] == 1
        assert snap["counters"]["responses_cached"] == 1
        assert snap["histograms"]["latency_s"]["count"] == 2
        assert snap["histograms"]["batch_size"]["count"] >= 1
        assert snap["gauges"]["recommendation_cache_hit_rate"] == pytest.approx(
            0.5
        )


class TestHotSwap:
    def test_server_adopts_new_model_version(self, plans):
        store = ModelStore()
        store.register("pl", StubPredictor(a=-0.5, log_b=6.0))
        pipeline = ScoringPipeline(StubPredictor(a=-0.1, log_b=1.0))
        config = ServerConfig(workers=1, model_refresh_interval_s=0.01)
        with AllocationServer(
            pipeline, config, store=store, model_name="pl"
        ) as server:
            assert server.model_version == 1
            first = server.request(plans[0], 500)
            store.register("pl", StubPredictor(a=-0.99, log_b=6.0))
            assert wait_until(lambda: server.model_version == 2)
            second = server.request(plans[1], 500)
        assert first.status is ResponseStatus.OK
        assert second.status is ResponseStatus.OK
        # steeper PCC → the swapped-in model recommends more tokens
        assert second.recommendation.pcc.a == pytest.approx(-0.99)
        assert server.metrics.snapshot()["counters"]["model_swaps"] == 2

    def test_store_requires_model_name(self):
        with pytest.raises(ServingError):
            AllocationServer(StubPipeline(), store=ModelStore())
