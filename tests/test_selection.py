"""Unit tests for job selection and flight filters (Section 5.1)."""

import numpy as np
import pytest

from repro.exceptions import FlightingError, NotFittedError, SelectionError
from repro.selection import (
    FlightObservation,
    KMeans,
    apply_flight_filters,
    cluster_proportions,
    ks_statistic,
    select_flighting_jobs,
    stratified_sample,
    violates_monotonicity,
)


class TestKMeans:
    def test_recovers_separated_clusters(self, rng):
        a = rng.normal([0, 0], 0.2, size=(50, 2))
        b = rng.normal([10, 10], 0.2, size=(50, 2))
        labels = KMeans(n_clusters=2, seed=1).fit_predict(np.vstack([a, b]))
        assert len(set(labels[:50])) == 1
        assert len(set(labels[50:])) == 1
        assert labels[0] != labels[50]

    def test_predict_unseen_points(self, rng):
        points = rng.normal(size=(30, 2))
        model = KMeans(n_clusters=3, seed=0).fit(points)
        labels = model.predict(rng.normal(size=(10, 2)))
        assert labels.shape == (10,)
        assert set(labels) <= {0, 1, 2}

    def test_deterministic(self, rng):
        points = rng.normal(size=(60, 3))
        a = KMeans(n_clusters=4, seed=7).fit_predict(points)
        b = KMeans(n_clusters=4, seed=7).fit_predict(points)
        assert np.array_equal(a, b)

    def test_inertia_decreases_with_more_clusters(self, rng):
        points = rng.normal(size=(100, 2))
        small = KMeans(n_clusters=2, seed=0).fit(points).inertia_
        large = KMeans(n_clusters=8, seed=0).fit(points).inertia_
        assert large < small

    def test_rejects_more_clusters_than_points(self):
        with pytest.raises(SelectionError):
            KMeans(n_clusters=5).fit(np.ones((3, 2)))

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            KMeans().predict(np.ones((2, 2)))

    def test_duplicate_points_handled(self):
        points = np.ones((20, 2))
        labels = KMeans(n_clusters=2, seed=0).fit_predict(points)
        assert labels.shape == (20,)


class TestStratifiedSampling:
    def test_proportions_match_population(self, rng):
        population = np.repeat([0, 1, 2], [500, 300, 200])
        pool = np.repeat([0, 1, 2], [100, 800, 100])  # heavily biased pool
        proportions = cluster_proportions(population, 3)
        indices = stratified_sample(pool, proportions, 100, rng)
        selected = pool[indices]
        fractions = cluster_proportions(selected, 3)
        assert abs(fractions[0] - 0.5) < 0.05
        assert abs(fractions[1] - 0.3) < 0.05

    def test_type_cap_enforced(self, rng):
        pool = np.zeros(50, dtype=int)
        types = np.array(["t0"] * 25 + ["t1"] * 25)
        indices = stratified_sample(
            pool, np.array([1.0]), 20, rng, type_ids=types, max_per_type=3
        )
        selected_types = types[indices]
        assert len(indices) == 6  # 3 of each type, then capped
        assert np.count_nonzero(selected_types == "t0") <= 3

    def test_cap_requires_types(self, rng):
        with pytest.raises(SelectionError):
            stratified_sample(np.zeros(5, int), np.array([1.0]), 2, rng,
                              max_per_type=2)

    def test_rejects_zero_sample(self, rng):
        with pytest.raises(SelectionError):
            stratified_sample(np.zeros(5, int), np.array([1.0]), 0, rng)


class TestKS:
    def test_identical_distributions_low_statistic(self, rng):
        sample = rng.normal(size=3000)
        assert ks_statistic(sample, sample) == 0.0

    def test_shifted_distributions_high_statistic(self, rng):
        a = rng.normal(0, 1, 500)
        b = rng.normal(5, 1, 500)
        assert ks_statistic(a, b) > 0.9

    def test_empty_raises(self):
        with pytest.raises(SelectionError):
            ks_statistic(np.array([]), np.array([1.0]))


class TestSelectFlightingJobs:
    def test_selection_improves_ks(self, repository):
        records = repository.records()
        # Biased pool: the cheapest half of the workload.
        pool = sorted(records, key=lambda r: r.plan.total_cost)[: len(records) // 2]
        result = select_flighting_jobs(
            records, pool, sample_size=15, n_clusters=4, seed=2
        )
        assert len(result.selected_indices) > 0
        # At this tiny pool size the KS statistic is noisy; selection must
        # not make representativeness materially worse.
        assert result.ks_after <= result.ks_before + 0.15

    def test_selected_indices_within_pool(self, repository):
        records = repository.records()
        pool = records[:30]
        result = select_flighting_jobs(records, pool, sample_size=10, seed=0)
        assert all(0 <= i < 30 for i in result.selected_indices)

    def test_rejects_oversized_sample(self, repository):
        records = repository.records()
        with pytest.raises(SelectionError):
            select_flighting_jobs(records, records[:5], sample_size=10)

    def test_rejects_empty_population(self):
        with pytest.raises(SelectionError):
            select_flighting_jobs([], [], sample_size=1)


class TestFlightFilters:
    def _obs(self, job, tokens, runtime, peak=None):
        return FlightObservation(
            job_id=job, tokens=tokens, runtime=runtime,
            peak_usage=peak if peak is not None else tokens * 0.8,
        )

    def test_monotonicity_violation_detection(self):
        flights = [self._obs("j", 10, 100), self._obs("j", 20, 150)]
        assert violates_monotonicity(flights)

    def test_tolerance_allows_small_increase(self):
        flights = [self._obs("j", 10, 100), self._obs("j", 20, 105)]
        assert not violates_monotonicity(flights, tolerance=0.10)

    def test_monotone_job_passes(self):
        flights = [self._obs("j", 10, 100), self._obs("j", 20, 60)]
        assert not violates_monotonicity(flights)

    def test_single_level_cannot_violate(self):
        assert not violates_monotonicity([self._obs("j", 10, 100)])

    def test_isolated_flights_dropped(self):
        report = apply_flight_filters([self._obs("only", 10, 100)])
        assert report.num_kept == 0
        assert report.dropped_isolated == ("only",)

    def test_errant_flights_dropped(self):
        flights = [
            self._obs("j", 10, 100, peak=15),  # errant: peak > allocation
            self._obs("j", 20, 60),
        ]
        report = apply_flight_filters(flights)
        assert len(report.dropped_errant) == 1
        # Only one level left -> the job becomes isolated.
        assert report.dropped_isolated == ("j",)

    def test_good_job_kept(self):
        flights = [
            self._obs("j", 10, 100),
            self._obs("j", 20, 60),
            self._obs("j", 40, 40),
        ]
        report = apply_flight_filters(flights)
        assert report.num_kept == 3
        assert not report.dropped_non_monotonic

    def test_non_monotonic_job_dropped_entirely(self):
        flights = [
            self._obs("good", 10, 100),
            self._obs("good", 20, 70),
            self._obs("bad", 10, 100),
            self._obs("bad", 20, 200),
        ]
        report = apply_flight_filters(flights)
        assert {f.job_id for f in report.kept} == {"good"}
        assert report.dropped_non_monotonic == ("bad",)

    def test_rejects_invalid_observation(self):
        with pytest.raises(FlightingError):
            FlightObservation(job_id="x", tokens=0, runtime=10, peak_usage=1)
