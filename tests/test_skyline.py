"""Unit tests for the Skyline data structure."""

import numpy as np
import pytest

from repro.exceptions import SkylineError
from repro.skyline import Skyline


class TestConstruction:
    def test_basic_properties(self):
        sky = Skyline([1, 2, 3, 2])
        assert sky.duration == 4
        assert sky.area == 8.0
        assert sky.peak == 3.0
        assert sky.mean_usage == 2.0

    def test_rejects_empty(self):
        with pytest.raises(SkylineError):
            Skyline([])

    def test_rejects_negative_usage(self):
        with pytest.raises(SkylineError):
            Skyline([1, -1, 2])

    def test_rejects_nan(self):
        with pytest.raises(SkylineError):
            Skyline([1.0, np.nan])

    def test_rejects_2d_input(self):
        with pytest.raises(SkylineError):
            Skyline(np.ones((3, 3)))

    def test_immutable(self):
        sky = Skyline([1, 2, 3])
        with pytest.raises(ValueError):
            sky.usage[0] = 99

    def test_copies_input(self):
        source = np.array([1.0, 2.0])
        sky = Skyline(source)
        source[0] = 50.0
        assert sky.usage[0] == 1.0

    def test_from_segments(self):
        sky = Skyline.from_segments([(3, 5.0), (2, 1.0)])
        assert sky.duration == 5
        assert list(sky.usage) == [5, 5, 5, 1, 1]

    def test_from_segments_rejects_zero_duration(self):
        with pytest.raises(SkylineError):
            Skyline.from_segments([(0, 5.0)])

    def test_from_segments_rejects_empty(self):
        with pytest.raises(SkylineError):
            Skyline.from_segments([])


class TestEquality:
    def test_equal_skylines(self):
        assert Skyline([1, 2]) == Skyline([1.0, 2.0])

    def test_unequal_values(self):
        assert Skyline([1, 2]) != Skyline([1, 3])

    def test_unequal_lengths(self):
        assert Skyline([1, 2]) != Skyline([1, 2, 3])

    def test_hash_consistent(self):
        assert hash(Skyline([1, 2])) == hash(Skyline([1, 2]))

    def test_container_protocol(self):
        sky = Skyline([4, 5, 6])
        assert len(sky) == 3
        assert sky[1] == 5
        assert list(sky) == [4, 5, 6]


class TestGeometry:
    def test_utilization_full(self):
        sky = Skyline([10, 10])
        assert sky.utilization(10) == 1.0

    def test_utilization_half(self):
        sky = Skyline([5, 5])
        assert sky.utilization(10) == 0.5

    def test_utilization_rejects_nonpositive_allocation(self):
        with pytest.raises(SkylineError):
            Skyline([1]).utilization(0)

    def test_over_allocation(self):
        sky = Skyline([3, 8, 2])
        # allocation 5: waste = 2 + 0 + 3
        assert sky.over_allocation(5) == 5.0

    def test_fraction_above(self):
        sky = Skyline([1, 5, 9, 9])
        assert sky.fraction_above(4) == 0.75

    def test_peakiness_flat_is_zero(self):
        assert Skyline([7, 7, 7]).peakiness() == 0.0

    def test_peakiness_orders_peaky_over_flat(self, peaky_skyline, flat_skyline):
        assert peaky_skyline.peakiness() > flat_skyline.peakiness()

    def test_peakiness_zero_usage(self):
        assert Skyline([0, 0]).peakiness() == 0.0


class TestTransformations:
    def test_clipped(self):
        sky = Skyline([2, 9, 4]).clipped(5)
        assert list(sky.usage) == [2, 5, 4]

    def test_concatenate(self):
        combined = Skyline([1, 2]).concatenate(Skyline([3]))
        assert list(combined.usage) == [1, 2, 3]

    def test_rounded(self):
        sky = Skyline([1.4, 2.6]).rounded()
        assert list(sky.usage) == [1, 3]

    def test_with_noise_preserves_length(self, rng):
        sky = Skyline(np.full(50, 10.0))
        noisy = sky.with_noise(rng, scale=0.1)
        assert noisy.duration == 50
        assert noisy != sky

    def test_with_zero_noise_returns_same(self, rng):
        sky = Skyline([1, 2, 3])
        assert sky.with_noise(rng, scale=0.0) is sky

    def test_with_noise_rejects_negative_scale(self, rng):
        with pytest.raises(SkylineError):
            Skyline([1]).with_noise(rng, scale=-0.1)
