"""Unit tests for the AREPAS simulator (Algorithm 1, Figures 6-8)."""

import numpy as np
import pytest

from repro.arepas import AREPAS, simulate_runtime, simulate_skyline
from repro.exceptions import SimulationError
from repro.skyline import Skyline


@pytest.fixture()
def figure6_skyline():
    """The toy skyline of Figures 6/7: a tall burst within a low profile."""
    return Skyline.from_segments([(4, 2), (6, 7), (10, 2)])


class TestBasicBehaviour:
    def test_allocation_at_peak_is_identity(self, figure6_skyline):
        result = AREPAS().simulate(figure6_skyline, figure6_skyline.peak)
        assert result.skyline == figure6_skyline
        assert result.slowdown == 0.0

    def test_allocation_above_peak_is_identity(self, figure6_skyline):
        result = AREPAS().simulate(figure6_skyline, 100)
        assert result.skyline == figure6_skyline

    def test_rejects_nonpositive_allocation(self, figure6_skyline):
        with pytest.raises(SimulationError):
            AREPAS().simulate(figure6_skyline, 0)

    def test_area_preserved_exactly(self, figure6_skyline):
        for allocation in (6, 5, 4, 3, 2, 1):
            simulated = simulate_skyline(figure6_skyline, allocation)
            assert simulated.area == pytest.approx(figure6_skyline.area)

    def test_runtime_never_decreases_with_fewer_tokens(self, figure6_skyline):
        runtimes = [
            simulate_runtime(figure6_skyline, a) for a in (7, 6, 5, 4, 3, 2, 1)
        ]
        assert all(b >= a for a, b in zip(runtimes, runtimes[1:]))

    def test_simulated_peak_within_allocation(self, figure6_skyline):
        simulated = simulate_skyline(figure6_skyline, 3)
        assert simulated.peak <= 3.0 + 1e-12

    def test_deterministic(self, figure6_skyline):
        first = simulate_skyline(figure6_skyline, 3)
        second = simulate_skyline(figure6_skyline, 3)
        assert first == second


class TestSectionHandling:
    def test_under_sections_copied_unchanged(self, figure6_skyline):
        """Figure 6: sections below the allocation keep their shape."""
        simulated = simulate_skyline(figure6_skyline, 3)
        # Leading 4 seconds at 2 tokens are below the threshold -> copied.
        assert list(simulated.usage[:4]) == [2, 2, 2, 2]
        # Trailing 10 seconds at 2 tokens are copied at the end.
        assert list(simulated.usage[-10:]) == [2] * 10

    def test_over_section_stretched(self, figure6_skyline):
        """Figure 7: the burst area 42 at threshold 3 takes 14 seconds."""
        result = AREPAS().simulate(figure6_skyline, 3)
        assert result.sections_redistributed == 1
        assert result.sections_copied == 2
        middle = result.skyline.usage[4:-10]
        assert middle.size == 14
        assert np.all(middle == 3.0)

    def test_paper_figure7_doubling(self):
        """Halving-ish the tokens of a flat-top burst doubles its length."""
        sky = Skyline.from_segments([(10, 6)])
        simulated = simulate_skyline(sky, 3)
        assert simulated.duration == 20
        assert np.all(simulated.usage == 3.0)

    def test_remainder_second(self):
        """Area that doesn't divide evenly spills into a shorter second."""
        sky = Skyline.from_segments([(5, 7)])  # area 35, threshold 3
        simulated = simulate_skyline(sky, 3)
        assert simulated.duration == 12  # 11 full seconds + remainder 2
        assert simulated.usage[-1] == pytest.approx(2.0)
        assert simulated.area == pytest.approx(35.0)

    def test_approximate_mode_truncates(self):
        sky = Skyline.from_segments([(5, 7)])
        sim = AREPAS(preserve_area_exactly=False)
        result = sim.simulate(sky, 3)
        assert result.simulated_runtime == 11  # int(35 / 3)
        assert np.all(result.skyline.usage == 3.0)


class TestPeakyVersusFlat:
    def test_peaky_tolerates_reduction_better(self, peaky_skyline, flat_skyline):
        """Figure 8: peaky jobs lose less performance when squeezed."""
        sim = AREPAS()

        def relative_slowdown(sky):
            allocation = 0.5 * sky.peak
            return sim.simulate(sky, allocation).slowdown

        assert relative_slowdown(peaky_skyline) < relative_slowdown(flat_skyline)

    def test_sweep_returns_one_result_per_allocation(self, peaky_skyline):
        results = AREPAS().sweep(peaky_skyline, [80.0, 40.0, 20.0])
        assert [r.allocation for r in results] == [80.0, 40.0, 20.0]
        assert all(r.skyline.area == pytest.approx(peaky_skyline.area)
                   for r in results)


class TestSweepRuntimesKernel:
    def test_matches_simulate_on_figure6(self, figure6_skyline):
        sim = AREPAS()
        grid = np.array([7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.5])
        fast = sim.sweep_runtimes(figure6_skyline, grid)
        slow = [
            sim.simulate(figure6_skyline, float(a)).simulated_runtime
            for a in grid
        ]
        assert fast.tolist() == slow

    def test_matches_simulate_in_approximate_mode(self, figure6_skyline):
        sim = AREPAS(preserve_area_exactly=False)
        grid = np.array([6.0, 4.5, 3.0, 1.5])
        fast = sim.sweep_runtimes(figure6_skyline, grid)
        slow = [
            sim.simulate(figure6_skyline, float(a)).simulated_runtime
            for a in grid
        ]
        assert fast.tolist() == slow

    def test_peak_fraction_thresholds_match(self, peaky_skyline):
        """Grids derived from the peak hit exact area/threshold ratios."""
        for exact in (True, False):
            sim = AREPAS(preserve_area_exactly=exact)
            grid = peaky_skyline.peak * np.array([1.0, 0.5, 0.25, 0.125])
            fast = sim.sweep_runtimes(peaky_skyline, grid)
            slow = [
                sim.simulate(peaky_skyline, float(a)).simulated_runtime
                for a in grid
            ]
            assert fast.tolist() == slow

    def test_allocations_at_or_above_peak_return_duration(
        self, figure6_skyline
    ):
        out = AREPAS().sweep_runtimes(
            figure6_skyline, [figure6_skyline.peak, 100.0]
        )
        assert out.tolist() == [figure6_skyline.duration] * 2

    def test_empty_grid(self, figure6_skyline):
        out = AREPAS().sweep_runtimes(figure6_skyline, [])
        assert out.size == 0

    def test_rejects_nonpositive_allocations(self, figure6_skyline):
        with pytest.raises(SimulationError):
            AREPAS().sweep_runtimes(figure6_skyline, [4.0, 0.0])
        with pytest.raises(SimulationError):
            AREPAS().sweep_runtimes(figure6_skyline, [-1.0])

    def test_runtime_uses_kernel(self, figure6_skyline):
        sim = AREPAS()
        for allocation in (7.0, 5.0, 3.0, 1.0):
            assert sim.runtime(figure6_skyline, allocation) == (
                sim.simulate(figure6_skyline, allocation).simulated_runtime
            )

    def test_row_blocking_matches_unblocked(self, figure6_skyline):
        """Force the block loop to split the grid; results must not change."""
        sim = AREPAS()
        grid = np.linspace(0.5, 6.5, 13)
        whole = sim.sweep_runtimes(figure6_skyline, grid)
        prefix = np.concatenate([[0.0], np.cumsum(figure6_skyline.usage)])
        blocked = np.concatenate([
            sim._sweep_block(
                figure6_skyline.usage, prefix, grid[i : i + 2],
                figure6_skyline.duration,
            )
            for i in range(0, grid.size, 2)
        ])
        below = grid < figure6_skyline.peak
        assert np.array_equal(whole[below], blocked[below])
