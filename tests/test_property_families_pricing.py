"""Property-based tests: PCC families and price-performance decisions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcc import AmdahlPCC, PowerLawPCC, ShiftedPowerLawPCC
from repro.tasq.price_performance import (
    cheapest_within_deadline,
    job_cost,
    pareto_frontier,
)

exponents = st.floats(min_value=-2.0, max_value=-0.01)
scales = st.floats(min_value=1.0, max_value=1e5)
floors = st.floats(min_value=0.0, max_value=1e3)
token_pairs = st.tuples(
    st.floats(min_value=1.0, max_value=1e4),
    st.floats(min_value=1.0, max_value=1e4),
)


class TestFamilyProperties:
    @given(st.floats(min_value=0.0, max_value=1e4),
           st.floats(min_value=0.0, max_value=1e6),
           token_pairs)
    def test_amdahl_monotone(self, serial, parallel, tokens):
        if serial == 0 and parallel == 0:
            return
        pcc = AmdahlPCC(serial=serial, parallel=parallel)
        low, high = sorted(tokens)
        assert pcc.runtime(low) >= pcc.runtime(high) - 1e-9

    @given(exponents, scales, floors, token_pairs)
    def test_shifted_monotone_and_floored(self, a, b, c, tokens):
        pcc = ShiftedPowerLawPCC(a=a, b=b, c=c)
        low, high = sorted(tokens)
        assert pcc.runtime(low) >= pcc.runtime(high) - 1e-9
        assert pcc.runtime(high) >= c - 1e-9

    @given(st.floats(min_value=1.0, max_value=1e3),
           st.floats(min_value=1.0, max_value=1e6))
    @settings(max_examples=50)
    def test_amdahl_fit_roundtrip(self, serial, parallel):
        true = AmdahlPCC(serial=serial, parallel=parallel)
        tokens = np.array([1.0, 3.0, 10.0, 40.0, 200.0])
        fitted = AmdahlPCC.fit(tokens, np.asarray(true.runtime(tokens)))
        assert np.isclose(fitted.serial, serial, rtol=1e-4, atol=1e-6)
        assert np.isclose(fitted.parallel, parallel, rtol=1e-4)


class TestPricingProperties:
    @given(exponents, scales,
           st.floats(min_value=1.0, max_value=1e4))
    @settings(max_examples=80)
    def test_deadline_solution_is_minimal(self, a, b, deadline):
        pcc = PowerLawPCC(a=a, b=b)
        tokens = cheapest_within_deadline(pcc, deadline, max_tokens=10**7)
        if tokens is None:
            return
        assert pcc.runtime(tokens) <= deadline * (1 + 1e-9)
        if tokens > 1:
            assert pcc.runtime(tokens - 1) > deadline * (1 - 1e-9)

    @given(st.floats(min_value=-0.95, max_value=-0.05), scales, token_pairs)
    def test_cost_increases_with_tokens_when_scaling_imperfect(
        self, a, b, tokens
    ):
        pcc = PowerLawPCC(a=a, b=b)
        low, high = sorted(tokens)
        assert job_cost(pcc, low) <= job_cost(pcc, high) + 1e-6

    @given(exponents, scales)
    @settings(max_examples=40)
    def test_frontier_is_mutually_non_dominated(self, a, b):
        pcc = PowerLawPCC(a=a, b=b)
        frontier = pareto_frontier(pcc, max_tokens=128, num_points=10)
        assert frontier
        for point in frontier:
            for other in frontier:
                strictly_better = (
                    other.cost < point.cost - 1e-9
                    and other.runtime < point.runtime - 1e-9
                )
                assert not strictly_better
