"""Differential tests: compiled inference kernels vs reference paths.

The contract under test (see ``repro.ml.compiled``):

* the flattened GBM forest is **bit-identical** to the per-tree python
  traversal — asserted with ``np.array_equal``, never ``allclose``;
* the fused float32 MLP matches the float64 autograd stack to float32
  round-off, and preserves the PCC head's sign guarantee exactly;
* the escape hatches (``override``, ``set_enabled``, ``use_compiled``)
  really do route back to the reference implementations;
* refitting a model drops its lazily compiled kernel.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError
from repro.ml import compiled
from repro.ml.autograd import Tensor
from repro.ml.compiled import FlattenedForest, FusedMLP, compile_network
from repro.ml.gbm import BoosterParams, GradientBoostingRegressor
from repro.ml.nn import Activation, Dense, Module, PCCParameterHead, Sequential
from repro.models.nn_model import NNPCCModel
from repro.models.xgboost_models import XGBoostPL, XGBoostRuntimeModel


def _training_data(seed=0, rows=300, cols=8):
    rng = np.random.default_rng(seed)
    features = rng.uniform(0, 10, size=(rows, cols))
    targets = np.exp(rng.normal(3.0, 0.8, rows))
    return features, targets


@pytest.fixture(scope="module")
def fitted_booster():
    features, targets = _training_data()
    params = BoosterParams(n_estimators=30, max_depth=4, subsample=0.8)
    return GradientBoostingRegressor(params, seed=1).fit(features, targets)


class TestFlattenedForestExact:
    """GBM kernel: np.array_equal against the python traversal."""

    @pytest.mark.parametrize("objective", ["gamma", "squared_error"])
    @pytest.mark.parametrize(
        "params",
        [
            BoosterParams(n_estimators=20, max_depth=5),
            BoosterParams(n_estimators=10, max_depth=1),
            BoosterParams(
                n_estimators=12, max_depth=3, subsample=0.6, colsample=0.5
            ),
            # min_child_weight so high every tree degenerates to one leaf
            BoosterParams(n_estimators=4, max_depth=3, min_child_weight=1e9),
        ],
    )
    def test_bit_identical_across_configs(self, objective, params):
        features, targets = _training_data(seed=2)
        if objective == "squared_error":
            targets = np.log(targets) - 3.0  # signed targets
        model = GradientBoostingRegressor(
            params, objective=objective, seed=3
        ).fit(features, targets)
        batch = features[:64]
        assert np.array_equal(
            model.predict(batch), model.predict_reference(batch)
        )
        assert np.array_equal(
            model.predict_raw(batch), model.predict_raw_reference(batch)
        )

    @pytest.mark.parametrize(
        "make_batch",
        [
            lambda f: f[:0],  # empty
            lambda f: f[:1],  # single row
            lambda f: np.zeros((5, f.shape[1])),  # constant features
            lambda f: np.full((3, f.shape[1]), 1e12),  # beyond every bin
            lambda f: np.full((3, f.shape[1]), -1e12),  # below every bin
        ],
    )
    def test_adversarial_batches(self, fitted_booster, make_batch):
        features, _ = _training_data()
        batch = make_batch(features)
        assert np.array_equal(
            fitted_booster.predict(batch),
            fitted_booster.predict_reference(batch),
        )

    def test_packed_and_unpacked_traversals_agree(self, fitted_booster):
        features, _ = _training_data()
        forest = fitted_booster.compiled_forest()
        assert forest._packed is not None
        binned = fitted_booster._mapper.transform(features[:40])
        base = fitted_booster._base_score
        assert np.array_equal(
            forest._predict_raw_packed(binned, base),
            forest._predict_raw_unpacked(binned, base),
        )

    def test_oversized_fields_fall_back_to_unpacked(self):
        # A hand-built single-split tree on feature 900: the 9-bit packed
        # encoding cannot represent it, so packing must be skipped while
        # prediction still works through the unpacked walk.
        feature = np.array([900, 0, 0], dtype=np.int64)
        threshold = np.array([3, -1, -1], dtype=np.int64)
        left = np.array([1, 1, 2], dtype=np.int64)
        right = np.array([2, 1, 2], dtype=np.int64)
        value = np.array([0.0, -1.5, 2.5])
        forest = FlattenedForest.from_trees(
            [(feature, threshold, left, right, value)], learning_rate=0.5
        )
        assert forest._packed is None
        binned = np.zeros((2, 901), dtype=np.uint8)
        binned[1, 900] = 10
        raw = forest.predict_raw(binned, base_score=1.0)
        assert np.array_equal(raw, np.array([1.0 - 0.75, 1.0 + 1.25]))

    @given(
        seed=st.integers(0, 2**16),
        n_estimators=st.integers(1, 8),
        max_depth=st.integers(1, 3),
        subsample=st.floats(0.5, 1.0),
        batch_seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_random_models_and_batches(
        self, seed, n_estimators, max_depth, subsample, batch_seed
    ):
        rng = np.random.default_rng(seed)
        features = rng.uniform(-5, 5, size=(60, 4))
        targets = np.exp(rng.normal(0, 1, 60))
        params = BoosterParams(
            n_estimators=n_estimators, max_depth=max_depth, subsample=subsample
        )
        model = GradientBoostingRegressor(params, seed=seed).fit(
            features, targets
        )
        batch_rng = np.random.default_rng(batch_seed)
        batch = batch_rng.uniform(-10, 10, size=(batch_rng.integers(0, 33), 4))
        assert np.array_equal(
            model.predict(batch), model.predict_reference(batch)
        )


class TestFusedMLP:
    """NN kernel: float32 agreement plus exact structural guarantees."""

    @pytest.mark.parametrize(
        "activation", ["relu", "tanh", "sigmoid", "softplus"]
    )
    def test_matches_autograd_within_float32(self, activation):
        rng = np.random.default_rng(7)
        network = Sequential(
            Dense(6, 16, rng),
            Activation(activation),
            Dense(16, 8, rng),
            Activation(activation),
            Dense(8, 3, rng),
        )
        fused = compile_network(network)
        batch = rng.normal(0, 2, size=(40, 6))
        got = fused.predict(batch)
        want = network(Tensor(batch)).numpy()
        assert got.dtype == np.float64
        np.testing.assert_allclose(got, want, rtol=5e-5, atol=5e-5)

    def test_pcc_head_sign_guarantee_is_exact(self):
        rng = np.random.default_rng(8)
        network = Sequential(
            Dense(5, 12, rng), Activation("relu"), PCCParameterHead(12, rng)
        )
        fused = compile_network(network)
        batch = rng.normal(0, 3, size=(64, 5))
        got = fused.predict(batch)
        want = network(Tensor(batch)).numpy()
        np.testing.assert_allclose(got, want, rtol=5e-5, atol=5e-5)
        assert np.all(got[:, 0] <= 0.0)  # a = -softplus(raw) exactly

    @pytest.mark.parametrize("rows", [0, 1, 37])
    def test_degenerate_batch_sizes(self, rows):
        rng = np.random.default_rng(9)
        network = Sequential(Dense(4, 6, rng), Activation("tanh"), Dense(6, 2, rng))
        fused = compile_network(network)
        batch = rng.normal(size=(rows, 4))
        got = fused.predict(batch)
        want = network(Tensor(batch)).numpy()
        assert got.shape == want.shape == (rows, 2)
        np.testing.assert_allclose(got, want, rtol=5e-5, atol=5e-5)

    def test_does_not_mutate_caller_input(self):
        rng = np.random.default_rng(10)
        fused = FusedMLP([("act", "relu"), ("dense",
                          rng.normal(size=(3, 2)).astype(np.float32),
                          np.zeros(2, dtype=np.float32))])
        batch = np.asarray(rng.normal(size=(5, 3)), dtype=np.float32)
        snapshot = batch.copy()
        fused.predict(batch)
        assert np.array_equal(batch, snapshot)

    def test_unfusable_module_raises(self):
        class Mystery(Module):
            def forward(self, inputs):
                return inputs

        rng = np.random.default_rng(11)
        with pytest.raises(ModelError):
            compile_network(Sequential(Dense(3, 3, rng), Mystery()))

    def test_head_must_be_final(self):
        rng = np.random.default_rng(12)
        with pytest.raises(ModelError):
            compile_network(
                Sequential(PCCParameterHead(3, rng), Dense(2, 2, rng))
            )

    def test_pickle_roundtrip_after_compilation(self):
        # ModelStore disk roundtrips pickle fitted models; the fused
        # pass holds thread-local scratch buffers and must shed them.
        import pickle

        rng = np.random.default_rng(15)
        network = Sequential(Dense(4, 6, rng), Activation("relu"), Dense(6, 2, rng))
        fused = compile_network(network)
        batch = rng.normal(size=(8, 4))
        expected = fused.predict(batch)  # warm the buffer pool first
        clone = pickle.loads(pickle.dumps(fused))
        assert np.array_equal(clone.predict(batch), expected)

    def test_thread_local_buffers_give_identical_results(self):
        rng = np.random.default_rng(13)
        network = Sequential(Dense(6, 8, rng), Activation("relu"), Dense(8, 2, rng))
        fused = compile_network(network)
        batch = rng.normal(size=(16, 6))
        expected = fused.predict(batch)
        results: dict[int, np.ndarray] = {}

        def worker(slot):
            results[slot] = fused.predict(batch)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for got in results.values():
            assert np.array_equal(got, expected)


class TestRoutingAndEscapeHatches:
    def test_override_is_nested_and_thread_local(self):
        assert compiled.is_enabled()
        with compiled.override(False):
            assert not compiled.is_enabled()
            with compiled.override(True):
                assert compiled.is_enabled()
            assert not compiled.is_enabled()

            seen = []
            probe = threading.Thread(
                target=lambda: seen.append(compiled.is_enabled())
            )
            probe.start()
            probe.join()
            assert seen == [True]  # override does not leak across threads
        assert compiled.is_enabled()

    def test_set_enabled_flips_process_default(self):
        try:
            compiled.set_enabled(False)
            assert not compiled.is_enabled()
            with compiled.override(True):
                assert compiled.is_enabled()
        finally:
            compiled.set_enabled(True)
        assert compiled.is_enabled()

    def test_use_compiled_false_routes_to_reference(self):
        features, targets = _training_data(seed=4)
        params = BoosterParams(n_estimators=10, max_depth=3)
        model = GradientBoostingRegressor(
            params, seed=5, use_compiled=False
        ).fit(features, targets)
        assert model._compiled is None
        model.predict(features[:8])
        assert model._compiled is None  # never compiled

    def test_refit_invalidates_compiled_forest(self, fitted_booster):
        features, targets = _training_data(seed=6)
        params = BoosterParams(n_estimators=5, max_depth=2)
        model = GradientBoostingRegressor(params, seed=7).fit(
            features, targets
        )
        model.predict(features[:4])
        first = model._compiled
        assert first is not None
        model.fit(features, targets + 1.0)
        assert model._compiled is None
        model.predict(features[:4])
        assert model._compiled is not first


class TestModelLayerRouting:
    """The model wrappers route through (and can bypass) the kernels."""

    @pytest.fixture(scope="class")
    def xgb_model(self, dataset):
        return XGBoostRuntimeModel(
            BoosterParams(n_estimators=25, max_depth=4)
        ).fit(dataset)

    def test_predict_curves_batched_is_bit_identical(self, xgb_model, dataset):
        rng = np.random.default_rng(14)
        grids = [
            np.maximum(1.0, rng.uniform(10, 1000, size=rng.integers(1, 9)))
            for _ in range(len(dataset))
        ]
        batched = xgb_model.predict_curves(dataset, grids)
        with compiled.override(False):
            looped = xgb_model.predict_curves(dataset, grids)
        assert len(batched) == len(looped)
        for got, want in zip(batched, looped):
            assert np.array_equal(got, want)

    def test_predict_curves_handles_empty_grids(self, xgb_model, dataset):
        grids = [np.empty(0) for _ in range(len(dataset))]
        batched = xgb_model.predict_curves(dataset, grids)
        assert all(curve.size == 0 for curve in batched)

    def test_xgboost_pl_parameters_unchanged_by_kernels(self, dataset):
        model = XGBoostPL(BoosterParams(n_estimators=20, max_depth=3)).fit(
            dataset
        )
        compiled_params = model.predict_parameters(dataset)
        with compiled.override(False):
            reference_params = model.predict_parameters(dataset)
        assert np.array_equal(compiled_params, reference_params)

    def test_nn_routing_and_reference(self, dataset):
        from repro.models.training import TrainConfig

        model = NNPCCModel(
            hidden_sizes=(8,), train_config=TrainConfig(epochs=2), seed=2
        ).fit(dataset)
        fused = model.predict_parameters(dataset)
        reference = model.predict_parameters_reference(dataset)
        np.testing.assert_allclose(fused, reference, rtol=5e-5, atol=5e-5)
        assert np.all(fused[:, 0] <= 0.0)
        with compiled.override(False):
            assert np.array_equal(
                model.predict_parameters(dataset), reference
            )
        first = model._compiled
        assert first is not None
        model.fit(dataset)  # refit drops the fused pass
        assert model._compiled is None
