"""Unit tests for prediction drift monitoring."""

import numpy as np
import pytest

from repro.exceptions import PipelineError
from repro.tasq.monitoring import PredictionMonitor


class TestPredictionMonitor:
    def test_rolling_error(self):
        monitor = PredictionMonitor(window=10, min_observations=2)
        monitor.observe(110, 100)  # 10%
        monitor.observe(130, 100)  # 30%
        assert monitor.rolling_median_ape == pytest.approx(20.0)

    def test_empty_monitor(self):
        monitor = PredictionMonitor()
        assert monitor.rolling_median_ape is None
        assert not monitor.needs_retraining

    def test_window_evicts_old_errors(self):
        monitor = PredictionMonitor(window=3, min_observations=2)
        for _ in range(3):
            monitor.observe(200, 100)  # 100% errors
        for _ in range(3):
            monitor.observe(100, 100)  # perfect, pushes the bad ones out
        assert monitor.rolling_median_ape == pytest.approx(0.0)

    def test_signal_requires_patience(self):
        monitor = PredictionMonitor(
            window=10, error_threshold=20.0, patience=5, min_observations=2
        )
        # The first observation cannot breach (below min_observations),
        # so five observations give four consecutive breaches.
        for _ in range(5):
            monitor.observe(200, 100)
        assert not monitor.needs_retraining
        monitor.observe(200, 100)
        assert monitor.needs_retraining

    def test_recovery_resets_breach_count(self):
        monitor = PredictionMonitor(
            window=4, error_threshold=20.0, patience=3, min_observations=2
        )
        monitor.observe(200, 100)
        monitor.observe(200, 100)
        # Two good observations drag the window median back down.
        monitor.observe(100, 100)
        monitor.observe(101, 100)
        monitor.observe(100, 100)
        assert not monitor.needs_retraining
        assert monitor.snapshot().consecutive_breaches == 0

    def test_no_signal_before_min_observations(self):
        monitor = PredictionMonitor(
            window=100, error_threshold=1.0, patience=1, min_observations=50
        )
        for _ in range(49):
            monitor.observe(500, 100)
        assert not monitor.needs_retraining

    def test_batch_observation(self):
        monitor = PredictionMonitor(window=10, min_observations=2)
        monitor.observe_batch(
            np.array([110.0, 120.0]), np.array([100.0, 100.0])
        )
        assert monitor.snapshot().observations == 2

    def test_batch_shape_mismatch(self):
        with pytest.raises(PipelineError):
            PredictionMonitor().observe_batch(
                np.array([1.0]), np.array([1.0, 2.0])
            )

    def test_reset(self):
        monitor = PredictionMonitor(
            window=5, error_threshold=10.0, patience=1, min_observations=2
        )
        for _ in range(5):
            monitor.observe(200, 100)
        assert monitor.needs_retraining
        monitor.reset()
        assert not monitor.needs_retraining
        assert monitor.rolling_median_ape is None

    def test_validation(self):
        with pytest.raises(PipelineError):
            PredictionMonitor(window=1)
        with pytest.raises(PipelineError):
            PredictionMonitor(error_threshold=0)
        with pytest.raises(PipelineError):
            PredictionMonitor(patience=0)
        with pytest.raises(PipelineError):
            PredictionMonitor().observe(0, 10)

    def test_end_to_end_with_model(self, dataset):
        """Monitor a real model: in-distribution OK, drifted world breaches."""
        from repro.models import NNPCCModel, TrainConfig

        model = NNPCCModel(train_config=TrainConfig(epochs=20), seed=0)
        model.fit(dataset)
        predicted = model.predict_runtime_at(
            dataset, dataset.observed_tokens()
        )
        actual = dataset.observed_runtimes()

        monitor = PredictionMonitor(
            window=50, error_threshold=60.0, patience=10, min_observations=10
        )
        monitor.observe_batch(predicted, actual)
        assert not monitor.needs_retraining  # in-distribution

        # A drifted world: inputs grew 4x, run times with them.
        monitor.observe_batch(predicted, actual * 4.0)
        assert monitor.needs_retraining
