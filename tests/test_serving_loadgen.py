"""Tests for the serving load generator."""

import time

import pytest

from repro.exceptions import ServingError
from repro.serving import (
    AllocationServer,
    LoadGenerator,
    LoadgenConfig,
    ServerConfig,
)
from tests.test_serving_server import StubPipeline


def make_server(workers=1):
    return AllocationServer(StubPipeline(), ServerConfig(workers=workers))


class StallingServer:
    """Wraps a real server but stalls every ``submit`` call.

    Models the coordinated-omission scenario: the server admits work
    slowly enough that the open-loop generator falls behind its own
    arrival schedule, while each request's *server-measured* latency
    stays tiny (the stall happens before the server's clock starts).
    """

    def __init__(self, inner, stall_s):
        self._inner = inner
        self._stall_s = stall_s

    def submit(self, plan, requested_tokens):
        time.sleep(self._stall_s)
        return self._inner.submit(plan, requested_tokens)

    def __enter__(self):
        self._inner.start()
        return self

    def __exit__(self, *exc_info):
        self._inner.stop()


class TestSchedule:
    def test_deterministic_under_fixed_seed(self, workload_jobs):
        config = LoadgenConfig(requests=200, seed=42)
        first = LoadGenerator(workload_jobs, config).schedule()
        second = LoadGenerator(workload_jobs, config).schedule()
        assert [j.job_id for j in first] == [j.job_id for j in second]

    def test_seed_changes_schedule(self, workload_jobs):
        a = LoadGenerator(workload_jobs, LoadgenConfig(requests=200, seed=1))
        b = LoadGenerator(workload_jobs, LoadgenConfig(requests=200, seed=2))
        ids_a = [j.job_id for j in a.schedule()]
        ids_b = [j.job_id for j in b.schedule()]
        assert ids_a != ids_b

    def test_skew_concentrates_traffic(self, workload_jobs):
        skewed = LoadGenerator(
            workload_jobs, LoadgenConfig(requests=400, popularity_skew=1.5, seed=0)
        ).schedule()
        uniform = LoadGenerator(
            workload_jobs, LoadgenConfig(requests=400, popularity_skew=0.0, seed=0)
        ).schedule()
        assert len({j.job_id for j in skewed}) < len({j.job_id for j in uniform})

    def test_validation(self, workload_jobs):
        with pytest.raises(ServingError):
            LoadgenConfig(requests=0)
        with pytest.raises(ServingError):
            LoadgenConfig(clients=0)
        with pytest.raises(ServingError):
            LoadGenerator([], LoadgenConfig())


class TestClosedLoop:
    def test_results_deterministic_with_one_client(self, workload_jobs):
        """Single client + single worker: identical count statistics."""
        config = LoadgenConfig(requests=120, clients=1, seed=7)
        reports = []
        for _ in range(2):
            with make_server(workers=1) as server:
                reports.append(
                    LoadGenerator(workload_jobs, config).run(server)
                )
        first, second = reports
        assert first.requests == second.requests == 120
        assert first.ok == second.ok
        assert first.cached == second.cached
        assert first.fallback == second.fallback == 0
        assert first.rejected == second.rejected == 0
        assert first.cache_hit_rate == second.cache_hit_rate
        assert first.throughput_rps > 0

    def test_warm_rerun_improves_hit_rate_and_latency(self, workload_jobs):
        config = LoadgenConfig(requests=150, clients=2, seed=3)
        loadgen = LoadGenerator(workload_jobs, config)
        with make_server(workers=2) as server:
            cold = loadgen.run(server)
            warm = loadgen.run(server)
        assert warm.cache_hit_rate > cold.cache_hit_rate
        assert warm.cache_hit_rate == pytest.approx(1.0)
        assert warm.latency_p50_s <= cold.latency_p50_s

    def test_all_requests_answered(self, workload_jobs):
        config = LoadgenConfig(requests=100, clients=4, seed=0)
        with make_server(workers=2) as server:
            report = LoadGenerator(workload_jobs, config).run(server)
        assert report.ok + report.cached + report.fallback + report.rejected == 100


class TestOpenLoop:
    def test_open_loop_completes(self, workload_jobs):
        config = LoadgenConfig(requests=60, arrival_rate=5000.0, seed=0)
        with make_server(workers=2) as server:
            report = LoadGenerator(workload_jobs, config).run(server)
        assert report.requests == 60
        assert report.ok + report.cached + report.fallback + report.rejected == 60

    def test_overload_sheds_instead_of_queueing(self, workload_jobs):
        """An open-loop flood against a tiny queue must shed, not hang."""
        gate_free = StubPipeline()
        config = ServerConfig(workers=1, max_queue=4, max_batch_size=1)
        server = AllocationServer(gate_free, config)
        loadgen = LoadGenerator(
            workload_jobs,
            LoadgenConfig(requests=300, arrival_rate=100_000.0, seed=0),
        )
        with server:
            report = loadgen.run(server)
        assert report.requests == 300
        counters = server.metrics.snapshot()["counters"]
        assert report.rejected == counters.get("rejected_queue_full", 0)


class TestCoordinatedOmission:
    def test_send_lag_is_charged_to_latency(self, workload_jobs):
        """A stalled generator must not report rosy percentiles.

        The arrival schedule asks for 1000 req/s but every submit stalls
        5 ms, so the generator drifts further behind with each request.
        Naive server-side latency stays sub-millisecond; the corrected
        p99 must include the accumulated schedule lag.
        """
        stall = 0.005
        config = LoadgenConfig(requests=40, arrival_rate=1000.0, seed=0)
        with StallingServer(make_server(workers=2), stall) as server:
            report = LoadGenerator(workload_jobs, config).run(server)
        # 40 requests at 1 ms spacing with 5 ms stalls: the last request
        # leaves ~40 * (5-1) ms late. The lag must be visible...
        assert report.max_send_lag_s > 0.05
        # ...and charged into the percentiles, not just reported beside
        # them (the classic coordinated-omission mistake).
        assert report.latency_p99_s >= report.max_send_lag_s * 0.5

    def test_no_lag_when_generator_keeps_up(self, workload_jobs):
        config = LoadgenConfig(requests=30, arrival_rate=50.0, seed=0)
        with make_server(workers=2) as server:
            report = LoadGenerator(workload_jobs, config).run(server)
        # 20 ms between arrivals against an instant stub: no meaningful
        # lag, so CO correction leaves the percentiles alone.
        assert report.max_send_lag_s < 0.01

    def test_closed_loop_reports_zero_lag(self, workload_jobs):
        config = LoadgenConfig(requests=30, clients=2, seed=0)
        with make_server(workers=2) as server:
            report = LoadGenerator(workload_jobs, config).run(server)
        assert report.max_send_lag_s == 0.0


class TestSLOAssertions:
    def test_violation_recorded_and_raised(self, workload_jobs):
        config = LoadgenConfig(
            requests=40,
            arrival_rate=1000.0,
            seed=0,
            slo_p99_s=1e-9,  # impossible: everything violates
        )
        with make_server(workers=2) as server:
            report = LoadGenerator(workload_jobs, config).run(server)
        assert report.slo_violations
        assert any("p99" in v for v in report.slo_violations)
        with pytest.raises(ServingError, match="SLO"):
            report.assert_slo()
        assert "SLO VIOLATION" in report.render()

    def test_generous_slo_passes(self, workload_jobs):
        config = LoadgenConfig(
            requests=40, clients=2, seed=0, slo_p95_s=60.0, slo_p99_s=60.0
        )
        with make_server(workers=2) as server:
            report = LoadGenerator(workload_jobs, config).run(server)
        assert report.slo_violations == ()
        assert report.assert_slo() is report

    def test_slo_must_be_positive(self):
        with pytest.raises(ServingError):
            LoadgenConfig(slo_p95_s=0.0)
        with pytest.raises(ServingError):
            LoadgenConfig(slo_p99_s=-1.0)


class TestReport:
    def test_render_mentions_required_stats(self, workload_jobs):
        config = LoadgenConfig(requests=50, clients=1, seed=0)
        with make_server() as server:
            report = LoadGenerator(workload_jobs, config).run(server)
        text = report.render()
        for needle in (
            "throughput", "p50", "p95", "p99", "cache hit rate", "shed rate",
        ):
            assert needle in text
