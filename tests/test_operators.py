"""Unit tests for the operator catalogue (Table 1 categorical schema)."""

import pytest

from repro.scope import (
    NUM_OPERATOR_KINDS,
    NUM_PARTITIONING_METHODS,
    OPERATOR_CATALOG,
    OPERATOR_NAMES,
    OperatorCategory,
    OperatorSpec,
    PartitioningMethod,
)


class TestCatalogue:
    def test_exactly_35_operators(self):
        """Table 1: 35 physical operators."""
        assert NUM_OPERATOR_KINDS == 35
        assert len(OPERATOR_CATALOG) == 35

    def test_exactly_4_partitioning_methods(self):
        """Table 1: 4 partitioning methods."""
        assert NUM_PARTITIONING_METHODS == 4
        assert {m.value for m in PartitioningMethod} == {
            "hash",
            "range",
            "round_robin",
            "broadcast",
        }

    def test_name_order_is_stable(self):
        """One-hot encoding relies on a deterministic name order."""
        assert OPERATOR_NAMES == tuple(OPERATOR_CATALOG)
        assert OPERATOR_NAMES[0] == "Extract"

    def test_sources_have_arity_zero(self):
        for spec in OPERATOR_CATALOG.values():
            if spec.category is OperatorCategory.SOURCE:
                assert spec.arity == 0

    def test_joins_are_binary(self):
        for spec in OPERATOR_CATALOG.values():
            if spec.category is OperatorCategory.JOIN:
                assert spec.arity == 2

    def test_exchanges_flagged(self):
        exchanges = [s for s in OPERATOR_CATALOG.values() if s.exchange]
        assert len(exchanges) == 3
        assert all(s.category is OperatorCategory.EXCHANGE for s in exchanges)

    def test_every_operator_has_positive_cost(self):
        assert all(s.cost_per_row > 0 for s in OPERATOR_CATALOG.values())

    def test_selectivity_ranges_valid(self):
        for spec in OPERATOR_CATALOG.values():
            low, high = spec.selectivity
            assert 0 < low <= high

    def test_blocking_operators_exist(self):
        blocking = {s.name for s in OPERATOR_CATALOG.values() if s.blocking}
        assert "Sort" in blocking
        assert "HashAggregate" in blocking
        assert "Filter" not in blocking


class TestOperatorSpec:
    def test_rejects_bad_arity(self):
        with pytest.raises(ValueError):
            OperatorSpec(
                name="Bad",
                arity=3,
                category=OperatorCategory.MISC,
                cost_per_row=1.0,
                selectivity=(1.0, 1.0),
            )

    def test_rejects_bad_selectivity(self):
        with pytest.raises(ValueError):
            OperatorSpec(
                name="Bad",
                arity=1,
                category=OperatorCategory.MISC,
                cost_per_row=1.0,
                selectivity=(0.0, 1.0),
            )
