"""Unit tests for PCC explanation rendering."""

import pytest

from repro.exceptions import PipelineError
from repro.pcc import PowerLawPCC
from repro.tasq import TokenRecommendation, explain_recommendation, render_pcc_chart


@pytest.fixture()
def recommendation():
    pcc = PowerLawPCC(a=-0.7, b=4000.0)
    return TokenRecommendation(
        job_id="job-x",
        pcc=pcc,
        requested_tokens=120,
        optimal_tokens=45,
        predicted_runtime_at_requested=float(pcc.runtime(120)),
        predicted_runtime_at_optimal=float(pcc.runtime(45)),
    )


class TestRenderChart:
    def test_dimensions(self):
        chart = render_pcc_chart(
            PowerLawPCC(a=-1, b=100), max_tokens=50, width=40, height=10
        )
        lines = chart.splitlines()
        assert len(lines) == 12  # height rows + axis + labels
        assert all("|" in line for line in lines[:10])

    def test_curve_is_visually_decreasing(self):
        chart = render_pcc_chart(
            PowerLawPCC(a=-1, b=100), max_tokens=50, width=30, height=8
        )
        lines = chart.splitlines()[:8]
        # First column's star is in the top row; last column's near bottom.
        assert "*" in lines[0]
        first_star_col = lines[0].index("*")
        last_rows = [i for i, line in enumerate(lines) if "*" in line]
        assert max(last_rows) > 0
        assert first_star_col < len(lines[0]) - 1

    def test_marks_placed(self):
        chart = render_pcc_chart(
            PowerLawPCC(a=-0.5, b=500),
            max_tokens=100,
            marks={"O": 30.0, "R": 100.0},
        )
        assert "O" in chart
        assert "R" in chart

    def test_axis_labels(self):
        chart = render_pcc_chart(PowerLawPCC(a=-1, b=100), max_tokens=50)
        assert "tokens (log scale)" in chart
        assert "s |" in chart

    def test_flat_curve_no_crash(self):
        chart = render_pcc_chart(PowerLawPCC(a=0.0, b=100), max_tokens=50)
        assert "*" in chart

    def test_invalid_args(self):
        with pytest.raises(PipelineError):
            render_pcc_chart(PowerLawPCC(a=-1, b=10), max_tokens=1,
                             min_tokens=5)
        with pytest.raises(PipelineError):
            render_pcc_chart(PowerLawPCC(a=-1, b=10), max_tokens=50, width=2)


class TestExplanation:
    def test_contains_key_facts(self, recommendation):
        text = explain_recommendation(recommendation)
        assert "job-x" in text
        assert "tokens^-0.700" in text
        assert "45 tokens" in text
        assert "monotonically non-increasing" in text
        assert "O" in text and "R" in text  # operating points on the chart

    def test_steepness_wording(self):
        def rec_with(a):
            pcc = PowerLawPCC(a=a, b=1000.0)
            return TokenRecommendation(
                job_id="j",
                pcc=pcc,
                requested_tokens=100,
                optimal_tokens=50,
                predicted_runtime_at_requested=float(pcc.runtime(100)),
                predicted_runtime_at_optimal=float(pcc.runtime(50)),
            )

        assert "highly parallel" in explain_recommendation(rec_with(-0.95))
        assert "moderately parallel" in explain_recommendation(rec_with(-0.5))
        assert "mostly serial" in explain_recommendation(rec_with(-0.05))
