"""Unit tests for query plan DAGs."""

import numpy as np
import pytest

from repro.exceptions import PlanError
from repro.scope import OperatorNode, QueryPlan


def _linear_plan() -> QueryPlan:
    """Extract -> Filter -> Output."""
    nodes = {
        0: OperatorNode(op_id=0, kind="Extract", output_cardinality=1000,
                        leaf_input_cardinality=1000, cost_exclusive=10),
        1: OperatorNode(op_id=1, kind="Filter", children=(0,),
                        output_cardinality=100, cost_exclusive=2),
        2: OperatorNode(op_id=2, kind="Output", children=(1,),
                        output_cardinality=100, cost_exclusive=1),
    }
    return QueryPlan(job_id="linear", nodes=nodes)


def _join_plan() -> QueryPlan:
    """Two sources joined, then output."""
    nodes = {
        0: OperatorNode(op_id=0, kind="Extract", output_cardinality=500,
                        cost_exclusive=5),
        1: OperatorNode(op_id=1, kind="TableScan", output_cardinality=300,
                        cost_exclusive=3),
        2: OperatorNode(op_id=2, kind="HashJoin", children=(0, 1),
                        output_cardinality=400, cost_exclusive=8),
        3: OperatorNode(op_id=3, kind="Output", children=(2,),
                        output_cardinality=400, cost_exclusive=1),
    }
    return QueryPlan(job_id="join", nodes=nodes)


class TestOperatorNode:
    def test_rejects_unknown_kind(self):
        with pytest.raises(PlanError):
            OperatorNode(op_id=0, kind="Nonsense")

    def test_rejects_zero_partitions(self):
        with pytest.raises(PlanError):
            OperatorNode(op_id=0, kind="Extract", num_partitions=0)

    def test_source_flag(self):
        assert OperatorNode(op_id=0, kind="Extract").is_source
        node = OperatorNode(op_id=1, kind="Filter", children=(0,))
        assert not node.is_source

    def test_stage_boundary_flags(self):
        sort = OperatorNode(op_id=0, kind="Sort", children=(1,))
        assert sort.starts_new_stage
        exchange = OperatorNode(op_id=0, kind="PartitionExchange", children=(1,))
        assert exchange.starts_new_stage
        project = OperatorNode(op_id=0, kind="Project", children=(1,))
        assert not project.starts_new_stage


class TestQueryPlanValidation:
    def test_rejects_empty_plan(self):
        with pytest.raises(PlanError):
            QueryPlan(job_id="x", nodes={})

    def test_rejects_wrong_arity(self):
        nodes = {0: OperatorNode(op_id=0, kind="Filter", children=())}
        with pytest.raises(PlanError):
            QueryPlan(job_id="x", nodes=nodes)

    def test_rejects_missing_child(self):
        nodes = {
            0: OperatorNode(op_id=0, kind="Filter", children=(99,)),
        }
        with pytest.raises(PlanError):
            QueryPlan(job_id="x", nodes=nodes)

    def test_rejects_cycle(self):
        nodes = {
            0: OperatorNode(op_id=0, kind="Filter", children=(1,)),
            1: OperatorNode(op_id=1, kind="Filter", children=(0,)),
        }
        with pytest.raises(PlanError):
            QueryPlan(job_id="x", nodes=nodes)


class TestStructure:
    def test_topological_order_children_first(self):
        plan = _join_plan()
        order = plan.topological_order
        position = {op_id: i for i, op_id in enumerate(order)}
        for node in plan.nodes.values():
            for child in node.children:
                assert position[child] < position[node.op_id]

    def test_sources_and_sinks(self):
        plan = _join_plan()
        assert {n.op_id for n in plan.sources} == {0, 1}
        assert [n.op_id for n in plan.sinks] == [3]

    def test_edges(self):
        plan = _linear_plan()
        assert sorted(plan.edges()) == [(0, 1), (1, 2)]

    def test_adjacency_matrix_matches_edges(self):
        plan = _join_plan()
        matrix = plan.adjacency_matrix()
        order = plan.topological_order
        index = {op_id: i for i, op_id in enumerate(order)}
        assert matrix.sum() == len(plan.edges())
        for child, parent in plan.edges():
            assert matrix[index[child], index[parent]] == 1.0

    def test_num_operators(self):
        assert _linear_plan().num_operators == 3

    def test_operator_counts(self):
        counts = _join_plan().operator_counts()
        assert counts == {"Extract": 1, "TableScan": 1, "HashJoin": 1, "Output": 1}

    def test_total_cost(self):
        assert _join_plan().total_cost == pytest.approx(17.0)

    def test_total_input_cardinality(self):
        assert _join_plan().total_input_cardinality == pytest.approx(800.0)

    def test_num_stages_counts_boundaries(self):
        # Sources open stages implicitly; HashJoin is binary+blocking.
        plan = _join_plan()
        assert plan.num_stages >= 2


class TestGeneratedPlans(object):
    def test_generated_plans_are_valid_dags(self, workload_jobs):
        for job in workload_jobs[:20]:
            plan = job.plan
            order = plan.topological_order
            assert len(order) == plan.num_operators
            matrix = plan.adjacency_matrix()
            # DAG in topological order => strictly upper-triangular.
            assert np.allclose(matrix, np.triu(matrix, k=1))

    def test_generated_plans_have_single_sink(self, workload_jobs):
        for job in workload_jobs[:20]:
            sinks = job.plan.sinks
            assert len(sinks) == 1
            assert sinks[0].kind == "Output"

    def test_estimates_are_positive(self, workload_jobs):
        for job in workload_jobs[:20]:
            for node in job.plan.nodes.values():
                assert node.output_cardinality >= 1.0
                assert node.cost_exclusive > 0
                assert node.true_cost > 0
                assert node.num_partitions >= 1
