"""Multi-process sharded serving: parity, transport, hot swap, metrics.

The pipelines here use feature-*dependent* stub predictors on purpose:
if the shared-memory feature transport garbled even one float, the
sharded answers would diverge from the single-process answers and the
parity assertions would catch it.
"""

import threading
import time

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.models.base import PCCPredictor
from repro.serving import (
    AllocationServer,
    ResponseStatus,
    ServerConfig,
    ShardConfig,
    ShardedAllocationServer,
    build_server,
)
from repro.tasq import ScoringPipeline
from repro.tasq.pipeline import featurize

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


class FeatureEchoPredictor(PCCPredictor):
    """PCC parameters derived from the features themselves.

    Any corruption of the job vector on its way through shared memory
    changes the predicted curve — and therefore the recommendation.
    """

    name = "feature-echo"

    def __init__(self):
        super().__init__()
        self._fitted = True

    def fit(self, dataset):
        return self

    def _params(self, dataset):
        X = np.asarray(dataset.job_feature_matrix(), dtype=np.float64)
        digest = np.abs(X).sum(axis=1)
        a = -0.5 - 0.4 * np.sin(digest) ** 2
        log_b = 4.0 + np.mod(digest, 2.0)
        return a, log_b

    def predict_parameters(self, dataset):
        a, log_b = self._params(dataset)
        return np.stack([a, log_b], axis=1)

    def predict_runtime_at(self, dataset, tokens):
        a, log_b = self._params(dataset)
        return np.exp(log_b) * np.power(float(tokens), a)

    def predict_curves(self, dataset, grids):
        a, log_b = self._params(dataset)
        return [
            np.exp(lb) * np.power(np.asarray(g, dtype=float), ai)
            for ai, lb, g in zip(a, log_b, grids)
        ]


class ConstPredictor(FeatureEchoPredictor):
    """Feature-independent curve — visibly different from the echo model."""

    name = "const"

    def _params(self, dataset):
        n = len(dataset)
        return np.full(n, -0.6), np.full(n, 5.0)


class GraphOnlyPredictor(ConstPredictor):
    name = "graph-only"
    uses_graph_features = True


class ScoreBatchOnlyPipeline:
    """A legacy pipeline shape: batch scoring but no plan-free entry."""

    def score_batch(self, plans, requested_tokens, features=None):
        raise AssertionError("should never be scored in these tests")


SHARD_CONFIG = ShardConfig(
    procs=2,
    flush_batch_size=4,
    flush_interval_s=0.001,
    shm_slots=4,
    metrics_interval_s=0.05,
)
SERVER_CONFIG = ServerConfig(workers=1, max_batch_size=4)


def start_or_skip(server):
    try:
        return server.start()
    except ServingError as error:
        if "could not start shard processes" in str(error):
            pytest.skip(str(error))
        raise


@pytest.fixture()
def plans(workload_jobs):
    return [job.plan for job in workload_jobs[:24]]


@pytest.fixture()
def sharded(request):
    server = ShardedAllocationServer(
        ScoringPipeline(FeatureEchoPredictor()),
        SHARD_CONFIG,
        server_config=SERVER_CONFIG,
    )
    start_or_skip(server)
    request.addfinalizer(server.stop)
    return server


def rec_tuple(response):
    rec = response.recommendation
    if rec is None:
        return None
    return (
        rec.job_id,
        rec.optimal_tokens,
        round(rec.predicted_runtime_at_requested, 12),
        round(rec.predicted_runtime_at_optimal, 12),
    )


class TestConstruction:
    def test_rejects_graph_models(self):
        with pytest.raises(ServingError, match="graph"):
            ShardedAllocationServer(ScoringPipeline(GraphOnlyPredictor()))

    def test_rejects_pipelines_without_score_features(self):
        with pytest.raises(ServingError, match="score_features"):
            ShardedAllocationServer(ScoreBatchOnlyPipeline())

    def test_config_validation(self):
        for bad in (
            dict(procs=0),
            dict(flush_batch_size=0),
            dict(flush_interval_s=-1.0),
            dict(shm_slots=0),
            dict(ring_replicas=0),
            dict(metrics_interval_s=-0.1),
            dict(request_timeout_s=0.0),
        ):
            with pytest.raises(ServingError):
                ShardConfig(**bad)

    def test_submit_requires_running(self, plans):
        server = ShardedAllocationServer(
            ScoringPipeline(FeatureEchoPredictor()), SHARD_CONFIG
        )
        with pytest.raises(ServingError, match="not running"):
            server.submit(plans[0], 10)

    def test_requested_tokens_must_be_positive(self, sharded, plans):
        with pytest.raises(ServingError, match="positive"):
            sharded.submit(plans[0], 0)


class TestBuildServer:
    def test_procs_one_is_the_single_process_server(self):
        server = build_server(
            ScoringPipeline(FeatureEchoPredictor()), SERVER_CONFIG, procs=1
        )
        assert type(server) is AllocationServer

    def test_procs_must_be_positive(self):
        with pytest.raises(ServingError):
            build_server(ScoringPipeline(FeatureEchoPredictor()), procs=0)

    def test_sharded_rejects_per_shard_kwargs(self):
        with pytest.raises(ServingError, match="store"):
            build_server(
                ScoringPipeline(FeatureEchoPredictor()),
                procs=2,
                store=object(),
            )

    def test_shard_config_procs_reconciled(self):
        server = build_server(
            ScoringPipeline(FeatureEchoPredictor()),
            procs=4,
            shard_config=ShardConfig(procs=2),
        )
        assert isinstance(server, ShardedAllocationServer)
        assert server.config.procs == 4
        assert server.num_shards == 4


class TestPreparedSubmission:
    """submit_prepared on the plain server — the path shard workers use."""

    def test_parity_with_submit(self, plans):
        pipeline = ScoringPipeline(FeatureEchoPredictor())
        from repro.scope.signatures import plan_signature

        with AllocationServer(pipeline, SERVER_CONFIG) as server:
            for plan in plans[:6]:
                via_plan = server.request(plan, 100)
                prepared = server.submit_prepared(
                    plan.job_id,
                    plan_signature(plan),
                    100,
                    features=featurize(plan),
                ).result(timeout=10.0)
            # The second call hits the recommendation cache seeded by the
            # first — same recommendation object, proving both entry
            # points share one admission path.
            assert prepared.status is ResponseStatus.CACHED
            assert rec_tuple(prepared) == rec_tuple(via_plan)

    def test_requires_score_features(self):
        with AllocationServer(ScoreBatchOnlyPipeline(), SERVER_CONFIG) as server:
            with pytest.raises(ServingError, match="score_features"):
                server.submit_prepared("job", "sig", 10, features=None)


class TestShardedParity:
    def test_recommendations_match_single_process(self, sharded, plans):
        """Same stream, serially, through both topologies: same answers."""
        single = AllocationServer(
            ScoringPipeline(FeatureEchoPredictor()), SERVER_CONFIG
        )
        stream = [(plan, 60 + 7 * i) for i, plan in enumerate(plans)]
        # Two passes: the second exercises the (per-shard) caches.
        stream = stream + stream
        with single:
            expected = [
                (r.status, rec_tuple(r))
                for r in (
                    single.request(plan, tokens, timeout=30.0)
                    for plan, tokens in stream
                )
            ]
        observed = [
            (r.status, rec_tuple(r))
            for r in (
                sharded.request(plan, tokens, timeout=30.0)
                for plan, tokens in stream
            )
        ]
        assert observed == expected

    def test_cache_hit_parity_on_replayed_stream(self, sharded, plans):
        first = [sharded.request(plan, 80, timeout=30.0) for plan in plans]
        second = [sharded.request(plan, 80, timeout=30.0) for plan in plans]
        for cold, warm in zip(first, second):
            if cold.status in (ResponseStatus.OK, ResponseStatus.CACHED):
                assert warm.status is ResponseStatus.CACHED
                assert rec_tuple(warm) == rec_tuple(cold)

    def test_responses_carry_the_answering_shard(self, sharded, plans):
        responses = [sharded.request(plan, 50, timeout=30.0) for plan in plans]
        shards = {r.shard for r in responses}
        assert shards <= {0, 1}
        # A signature always lands on the same shard.
        again = [sharded.request(plan, 51, timeout=30.0) for plan in plans]
        assert [r.shard for r in again] == [r.shard for r in responses]

    def test_routing_is_signature_stable_across_servers(self, plans):
        """Two parents with the same config route identically (the ring
        hashes with blake2b, never the salted builtin hash)."""
        a = ShardedAllocationServer(
            ScoringPipeline(FeatureEchoPredictor()), SHARD_CONFIG
        )
        b = ShardedAllocationServer(
            ScoringPipeline(FeatureEchoPredictor()), SHARD_CONFIG
        )
        from repro.scope.signatures import plan_signature

        signatures = [plan_signature(plan) for plan in plans]
        assert a.ring.route_many(signatures) == b.ring.route_many(signatures)


class TestHotSwap:
    def test_swap_rejects_graph_models(self, sharded):
        with pytest.raises(ServingError, match="graph"):
            sharded.swap_model(GraphOnlyPredictor())

    def test_swap_under_load_is_stall_free(self, sharded, plans):
        """Traffic keeps flowing while every shard adopts the new model."""
        stop = threading.Event()
        responses = []
        failures = []

        def pound():
            i = 0
            while not stop.is_set():
                plan = plans[i % len(plans)]
                try:
                    # Varying token counts defeat the recommendation
                    # cache, so scoring stays on the hot path during the
                    # swap instead of being absorbed by cache hits.
                    responses.append(
                        sharded.request(plan, 40 + i, timeout=30.0)
                    )
                except Exception as error:  # pragma: no cover - fail path
                    failures.append(error)
                    return
                i += 1

        pounder = threading.Thread(target=pound, daemon=True)
        pounder.start()
        time.sleep(0.1)
        before = len(responses)
        versions = sharded.swap_model(ConstPredictor(), timeout=30.0)
        time.sleep(0.2)
        stop.set()
        pounder.join(timeout=30.0)

        assert not failures
        assert set(versions) == {0, 1}
        assert all(v == 2 for v in versions.values())
        # Requests flowed before, during, and after the swap; none were
        # rejected by the swap itself.
        assert len(responses) > before
        assert all(
            r.status in (ResponseStatus.OK, ResponseStatus.CACHED)
            for r in responses
        )

    def test_swap_changes_the_answers(self, sharded, plans):
        plan = plans[0]
        old = sharded.request(plan, 200, timeout=30.0)
        sharded.swap_model(ConstPredictor(), timeout=30.0)
        # New token count -> cache miss -> scored by the swapped model.
        new = sharded.request(plan, 201, timeout=30.0)
        assert old.recommendation is not None
        assert new.recommendation is not None
        assert (
            new.recommendation.predicted_runtime_at_requested
            != old.recommendation.predicted_runtime_at_requested
        )


class TestFleetMetrics:
    def test_shard_deltas_merge_with_labels(self, sharded, plans):
        for i, plan in enumerate(plans):
            sharded.request(plan, 30 + i, timeout=30.0)
        snapshot = sharded.metrics_snapshot()
        counters = snapshot["counters"]
        parent_answered = sum(
            counters.get(f"responses_{s}", 0)
            for s in ("ok", "cached", "fallback", "rejected")
        )
        assert parent_answered == len(plans)
        shard_answered = sum(
            count
            for name, count in counters.items()
            if name.startswith("responses_") and "{" in name
        )
        # Every parent-side answer was produced by some shard's inner
        # server, and the labeled deltas account for all of them.
        assert shard_answered == parent_answered
        assert any("shard=0" in name for name in counters)
        assert counters["requests_total"] == len(plans)

    def test_stats_exposes_per_shard_caches(self, sharded, plans):
        for plan in plans:
            sharded.request(plan, 64, timeout=30.0)
        for plan in plans:
            sharded.request(plan, 64, timeout=30.0)
        stats = sharded.stats()
        assert stats["procs"] == 2
        assert stats["ring_nodes"] == ["shard-0", "shard-1"]
        assert stats["prep_cache"]["hits"] >= len(plans)
        total_hits = sum(
            entry["recommendation_cache"]["hits"]
            for entry in stats["shards"]
            if entry["alive"]
        )
        assert total_hits >= 1
        assert all("model_version" in e for e in stats["shards"])

    def test_completion_feedback_reaches_the_serving_shard(
        self, sharded, plans
    ):
        responses = [
            sharded.request(plan, 70, timeout=30.0) for plan in plans[:8]
        ]
        for response in responses:
            sharded.record_completion(response, actual_runtime=12.5)

        def observed():
            return sum(
                e.get("monitor_observations", 0)
                for e in sharded.stats()["shards"]
            )

        deadline = time.monotonic() + 10.0
        expecting = sum(
            1
            for r in responses
            if r.status in (ResponseStatus.OK, ResponseStatus.CACHED)
        )
        while time.monotonic() < deadline and observed() < expecting:
            time.sleep(0.02)
        assert observed() == expecting


class TestShutdown:
    def test_stop_then_submit_raises(self, plans):
        server = ShardedAllocationServer(
            ScoringPipeline(FeatureEchoPredictor()), SHARD_CONFIG
        )
        start_or_skip(server)
        assert server.is_running
        server.stop()
        assert not server.is_running
        with pytest.raises(ServingError):
            server.submit(plans[0], 10)
        server.stop()  # idempotent

    def test_loadgen_drives_the_sharded_server(self, workload_jobs):
        from repro.serving import LoadGenerator, LoadgenConfig

        server = ShardedAllocationServer(
            ScoringPipeline(FeatureEchoPredictor()), SHARD_CONFIG
        )
        start_or_skip(server)
        try:
            report = LoadGenerator(
                workload_jobs[:20],
                LoadgenConfig(requests=40, clients=2, seed=3),
            ).run(server)
        finally:
            server.stop()
        assert report.requests == 40
        assert report.rejected == 0
