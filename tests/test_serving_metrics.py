"""Unit tests for the serving metrics registry (now an obs shim)."""

import threading

import pytest

from repro.exceptions import ObservabilityError
from repro.serving import Counter, LatencyHistogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        counter = Counter("requests")
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            Counter("x").increment(-1)

    def test_thread_safety(self):
        counter = Counter("x")

        def spin():
            for _ in range(1000):
                counter.increment()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram("latency")
        assert hist.count == 0
        assert hist.mean is None
        assert hist.quantile(0.5) is None
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert snap["p99"] is None

    def test_quantiles_ordered_and_bounded(self):
        hist = LatencyHistogram("latency")
        values = [i / 1000.0 for i in range(1, 101)]  # 1ms .. 100ms
        for v in values:
            hist.record(v)
        p50, p95, p99 = (hist.quantile(q) for q in (0.5, 0.95, 0.99))
        assert min(values) <= p50 <= p95 <= p99 <= max(values)
        # log-bucketed estimate should land near the true quantile
        assert p50 == pytest.approx(0.050, rel=0.30)
        assert p99 == pytest.approx(0.099, rel=0.30)

    def test_overflow_bucket_reports_max(self):
        hist = LatencyHistogram("latency", bounds=[0.1, 1.0])
        hist.record(50.0)
        assert hist.quantile(0.99) == 50.0

    def test_snapshot_fields(self):
        hist = LatencyHistogram("latency")
        hist.record(0.010)
        hist.record(0.030)
        snap = hist.snapshot()
        assert snap["count"] == 2
        assert snap["sum"] == pytest.approx(0.040)
        assert snap["mean"] == pytest.approx(0.020)
        assert snap["min"] == pytest.approx(0.010)
        assert snap["max"] == pytest.approx(0.030)

    def test_rejects_bad_values(self):
        hist = LatencyHistogram("latency")
        with pytest.raises(ObservabilityError):
            hist.record(-1.0)
        with pytest.raises(ObservabilityError):
            hist.quantile(0.0)


class TestMetricsRegistry:
    def test_create_on_first_use(self):
        registry = MetricsRegistry()
        registry.counter("a").increment()
        assert registry.counter("a").value == 1  # same instance

    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("requests").increment(3)
        registry.histogram("latency").record(0.25)
        registry.register_gauge("depth", lambda: 7)
        snap = registry.snapshot()
        assert snap["counters"]["requests"] == 3
        assert snap["histograms"]["latency"]["count"] == 1
        assert snap["gauges"]["depth"] == 7

    def test_gauge_evaluated_lazily(self):
        registry = MetricsRegistry()
        state = {"value": 1}
        registry.register_gauge("g", lambda: state["value"])
        assert registry.snapshot()["gauges"]["g"] == 1
        state["value"] = 2
        assert registry.snapshot()["gauges"]["g"] == 2
