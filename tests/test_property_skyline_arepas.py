"""Property-based tests: skyline geometry and AREPAS invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.arepas import AREPAS
from repro.skyline import Skyline, split_sections
from repro.skyline.policies import AdaptivePeakAllocation

usage_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=120),
    elements=st.floats(min_value=0.0, max_value=500.0,
                       allow_nan=False, allow_infinity=False),
)

positive_usage_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=120),
    elements=st.floats(min_value=0.5, max_value=500.0,
                       allow_nan=False, allow_infinity=False),
)


class TestSkylineProperties:
    @given(usage_arrays)
    def test_area_is_sum_and_peak_is_max(self, usage):
        sky = Skyline(usage)
        assert sky.area == usage.sum()
        assert sky.peak == usage.max()

    @given(usage_arrays, st.floats(min_value=0.1, max_value=600.0))
    def test_clipping_never_increases_area_or_peak(self, usage, allocation):
        sky = Skyline(usage)
        clipped = sky.clipped(allocation)
        assert clipped.area <= sky.area + 1e-9
        assert clipped.peak <= min(sky.peak, allocation) + 1e-9
        assert clipped.duration == sky.duration

    @given(positive_usage_arrays, st.floats(min_value=0.1, max_value=600.0))
    def test_sections_partition_skyline(self, usage, threshold):
        sky = Skyline(usage)
        sections = split_sections(sky, threshold)
        assert sum(s.duration for s in sections) == sky.duration
        assert np.isclose(sum(s.area for s in sections), sky.area, rtol=1e-12)
        # Adjacent sections alternate over/under.
        for left, right in zip(sections[:-1], sections[1:]):
            assert left.over != right.over

    @given(usage_arrays)
    def test_adaptive_peak_dominates_and_decreases(self, usage):
        sky = Skyline(usage)
        curve = AdaptivePeakAllocation().allocation_curve(sky)
        assert np.all(np.diff(curve) <= 1e-12)
        assert np.all(curve >= sky.usage - 1e-12)


class TestArepasProperties:
    @given(positive_usage_arrays,
           st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=60)
    def test_area_always_preserved(self, usage, fraction):
        sky = Skyline(usage)
        allocation = max(0.5, fraction * sky.peak)
        result = AREPAS().simulate(sky, allocation)
        assert result.skyline.area == np.float64(sky.area) or (
            abs(result.skyline.area - sky.area) < 1e-6 * max(1.0, sky.area)
        )

    @given(positive_usage_arrays,
           st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=60)
    def test_peak_capped_and_runtime_longer(self, usage, fraction):
        sky = Skyline(usage)
        allocation = max(0.5, fraction * sky.peak)
        result = AREPAS().simulate(sky, allocation)
        assert result.skyline.peak <= max(allocation, sky.peak) + 1e-9
        assert result.simulated_runtime >= sky.duration

    @given(positive_usage_arrays,
           st.floats(min_value=0.05, max_value=0.9),
           st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=60)
    def test_runtime_monotone_in_allocation(self, usage, f1, f2):
        sky = Skyline(usage)
        low, high = sorted([max(0.5, f1 * sky.peak), max(0.5, f2 * sky.peak)])
        sim = AREPAS()
        assert sim.runtime(sky, low) >= sim.runtime(sky, high)

    @given(positive_usage_arrays)
    @settings(max_examples=40)
    def test_identity_at_or_above_peak(self, usage):
        sky = Skyline(usage)
        result = AREPAS().simulate(sky, sky.peak)
        assert result.skyline == sky


class TestSweepKernelProperties:
    """The vectorized sweep must match simulate() point-for-point."""

    @given(positive_usage_arrays, st.booleans())
    @settings(max_examples=60)
    def test_ragged_skylines_match_simulate(self, usage, exact):
        sky = Skyline(usage)
        sim = AREPAS(preserve_area_exactly=exact)
        # Include peak fractions on the grid — they produce area/threshold
        # ratios that land exactly on integers, the hardest case for
        # floating-point agreement between the two paths.
        grid = np.unique(np.concatenate([
            np.geomspace(0.2, 1.3, 9) * sky.peak,
            [sky.peak, sky.peak / 2, 0.5],
        ]))
        fast = sim.sweep_runtimes(sky, grid)
        slow = np.array(
            [sim.simulate(sky, float(a)).simulated_runtime for a in grid]
        )
        assert np.array_equal(fast, slow)

    @given(st.integers(min_value=1, max_value=200),
           st.floats(min_value=0.5, max_value=100.0),
           st.booleans())
    @settings(max_examples=40)
    def test_flat_skylines_match_simulate(self, length, level, exact):
        sky = Skyline(np.full(length, level))
        sim = AREPAS(preserve_area_exactly=exact)
        grid = np.geomspace(0.1, 1.5, 12) * level
        fast = sim.sweep_runtimes(sky, grid)
        slow = np.array(
            [sim.simulate(sky, float(a)).simulated_runtime for a in grid]
        )
        assert np.array_equal(fast, slow)

    @given(st.floats(min_value=1.0, max_value=400.0),
           st.integers(min_value=1, max_value=30),
           st.booleans())
    @settings(max_examples=40)
    def test_single_section_skylines_match_simulate(
        self, level, length, exact
    ):
        # One over-threshold section spanning the whole skyline.
        sky = Skyline(np.full(length, level))
        sim = AREPAS(preserve_area_exactly=exact)
        grid = np.linspace(level / 10, level * 0.99, 8)
        fast = sim.sweep_runtimes(sky, grid)
        slow = np.array(
            [sim.simulate(sky, float(a)).simulated_runtime for a in grid]
        )
        assert np.array_equal(fast, slow)
