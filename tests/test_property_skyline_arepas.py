"""Property-based tests: skyline geometry and AREPAS invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.arepas import AREPAS
from repro.skyline import Skyline, split_sections
from repro.skyline.policies import AdaptivePeakAllocation

usage_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=120),
    elements=st.floats(min_value=0.0, max_value=500.0,
                       allow_nan=False, allow_infinity=False),
)

positive_usage_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=120),
    elements=st.floats(min_value=0.5, max_value=500.0,
                       allow_nan=False, allow_infinity=False),
)


class TestSkylineProperties:
    @given(usage_arrays)
    def test_area_is_sum_and_peak_is_max(self, usage):
        sky = Skyline(usage)
        assert sky.area == usage.sum()
        assert sky.peak == usage.max()

    @given(usage_arrays, st.floats(min_value=0.1, max_value=600.0))
    def test_clipping_never_increases_area_or_peak(self, usage, allocation):
        sky = Skyline(usage)
        clipped = sky.clipped(allocation)
        assert clipped.area <= sky.area + 1e-9
        assert clipped.peak <= min(sky.peak, allocation) + 1e-9
        assert clipped.duration == sky.duration

    @given(positive_usage_arrays, st.floats(min_value=0.1, max_value=600.0))
    def test_sections_partition_skyline(self, usage, threshold):
        sky = Skyline(usage)
        sections = split_sections(sky, threshold)
        assert sum(s.duration for s in sections) == sky.duration
        assert np.isclose(sum(s.area for s in sections), sky.area, rtol=1e-12)
        # Adjacent sections alternate over/under.
        for left, right in zip(sections[:-1], sections[1:]):
            assert left.over != right.over

    @given(usage_arrays)
    def test_adaptive_peak_dominates_and_decreases(self, usage):
        sky = Skyline(usage)
        curve = AdaptivePeakAllocation().allocation_curve(sky)
        assert np.all(np.diff(curve) <= 1e-12)
        assert np.all(curve >= sky.usage - 1e-12)


class TestArepasProperties:
    @given(positive_usage_arrays,
           st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=60)
    def test_area_always_preserved(self, usage, fraction):
        sky = Skyline(usage)
        allocation = max(0.5, fraction * sky.peak)
        result = AREPAS().simulate(sky, allocation)
        assert result.skyline.area == np.float64(sky.area) or (
            abs(result.skyline.area - sky.area) < 1e-6 * max(1.0, sky.area)
        )

    @given(positive_usage_arrays,
           st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=60)
    def test_peak_capped_and_runtime_longer(self, usage, fraction):
        sky = Skyline(usage)
        allocation = max(0.5, fraction * sky.peak)
        result = AREPAS().simulate(sky, allocation)
        assert result.skyline.peak <= max(allocation, sky.peak) + 1e-9
        assert result.simulated_runtime >= sky.duration

    @given(positive_usage_arrays,
           st.floats(min_value=0.05, max_value=0.9),
           st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=60)
    def test_runtime_monotone_in_allocation(self, usage, f1, f2):
        sky = Skyline(usage)
        low, high = sorted([max(0.5, f1 * sky.peak), max(0.5, f2 * sky.peak)])
        sim = AREPAS()
        assert sim.runtime(sky, low) >= sim.runtime(sky, high)

    @given(positive_usage_arrays)
    @settings(max_examples=40)
    def test_identity_at_or_above_peak(self, usage):
        sky = Skyline(usage)
        result = AREPAS().simulate(sky, sky.peak)
        assert result.skyline == sky
