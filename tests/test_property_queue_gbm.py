"""Property-based tests: cluster queue and GBM invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.gbm import BoosterParams, GradientBoostingRegressor
from repro.scope.cluster import ClusterQueue, QueuedJob

job_streams = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100),  # arrival
        st.integers(min_value=1, max_value=20),  # tokens
        st.floats(min_value=0.5, max_value=30),  # runtime
    ),
    min_size=1,
    max_size=25,
)


def _make_jobs(raw):
    return [
        QueuedJob(job_id=f"j{i}", arrival_time=a, tokens=t, runtime=r)
        for i, (a, t, r) in enumerate(raw)
    ]


class TestQueueProperties:
    @given(job_streams)
    @settings(max_examples=60)
    def test_fcfs_invariants(self, raw):
        jobs = _make_jobs(raw)
        report = ClusterQueue(capacity=20).run(jobs)
        outcomes = {o.job_id: o for o in report.outcomes}
        for job in jobs:
            outcome = outcomes[job.job_id]
            # No job starts before arriving, and runs exactly its runtime.
            assert outcome.start_time >= job.arrival_time - 1e-9
            assert outcome.finish_time == outcome.start_time + job.runtime
            assert outcome.wait_time >= -1e-9

    @given(job_streams)
    @settings(max_examples=60)
    def test_capacity_never_exceeded(self, raw):
        jobs = _make_jobs(raw)
        capacity = 20
        report = ClusterQueue(capacity=capacity).run(jobs)
        outcomes = {o.job_id: o for o in report.outcomes}
        # Check concurrent token usage at every start instant.
        for probe in report.outcomes:
            t = probe.start_time
            used = sum(
                job.tokens
                for job in jobs
                if outcomes[job.job_id].start_time <= t
                < outcomes[job.job_id].finish_time
            )
            assert used <= capacity

    @given(job_streams)
    @settings(max_examples=40)
    def test_more_capacity_never_hurts(self, raw):
        jobs = _make_jobs(raw)
        small = ClusterQueue(capacity=20).run(jobs)
        large = ClusterQueue(capacity=40).run(jobs)
        assert large.mean_wait <= small.mean_wait + 1e-9
        assert large.makespan <= small.makespan + 1e-9

    @given(job_streams)
    @settings(max_examples=40)
    def test_fcfs_order_preserved(self, raw):
        """Start times follow arrival order (no backfilling)."""
        jobs = _make_jobs(raw)
        report = ClusterQueue(capacity=20).run(jobs)
        ordered = sorted(
            report.outcomes, key=lambda o: (o.arrival_time, o.job_id)
        )
        starts = [o.start_time for o in ordered]
        assert all(a <= b + 1e-9 for a, b in zip(starts, starts[1:]))


class TestGBMProperties:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.5, max_value=5.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_gamma_predictions_always_positive(self, seed, spread):
        rng = np.random.default_rng(seed)
        features = rng.uniform(0, 10, size=(200, 3))
        targets = np.exp(rng.normal(2, spread, size=200)) + 0.1
        model = GradientBoostingRegressor(
            BoosterParams(n_estimators=15, max_depth=3),
            objective="gamma",
            seed=seed,
        )
        model.fit(features, targets)
        predictions = model.predict(features)
        assert np.all(predictions > 0)
        assert np.all(np.isfinite(predictions))

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_constant_target_recovered(self, seed):
        rng = np.random.default_rng(seed)
        features = rng.uniform(0, 1, size=(100, 2))
        targets = np.full(100, 7.0)
        model = GradientBoostingRegressor(
            BoosterParams(n_estimators=20),
            objective="squared_error",
            seed=seed,
        )
        model.fit(features, targets)
        assert np.allclose(model.predict(features), 7.0, atol=0.1)
