"""Unit tests for the discrete-event cluster executor."""

import numpy as np
import pytest

from repro.exceptions import ExecutionError
from repro.scope import (
    ClusterExecutor,
    CostModel,
    OperatorNode,
    QueryPlan,
    decompose_stages,
)
from repro.scope.execution import _intervals_to_skyline


def _simple_graph(partitions=8, cost=1000.0):
    nodes = {
        0: OperatorNode(op_id=0, kind="Extract", cost_exclusive=cost,
                        true_cost=cost, num_partitions=partitions),
        1: OperatorNode(op_id=1, kind="Output", children=(0,),
                        cost_exclusive=cost / 10, true_cost=cost / 10,
                        num_partitions=partitions),
    }
    return decompose_stages(QueryPlan(job_id="simple", nodes=nodes))


class TestExecutor:
    def test_rejects_zero_tokens(self):
        with pytest.raises(ExecutionError):
            ClusterExecutor().execute(_simple_graph(), 0)

    def test_noise_requires_rng(self):
        executor = ClusterExecutor(noise_scale=0.1)
        with pytest.raises(ExecutionError):
            executor.execute(_simple_graph(), 4)

    def test_deterministic_without_noise(self):
        executor = ClusterExecutor()
        first = executor.execute(_simple_graph(), 4)
        second = executor.execute(_simple_graph(), 4)
        assert first.skyline == second.skyline

    def test_usage_never_exceeds_allocation(self):
        executor = ClusterExecutor()
        result = executor.execute(_simple_graph(partitions=32), 5)
        assert result.skyline.peak <= 5.0 + 1e-9

    def test_more_tokens_never_slower(self):
        executor = ClusterExecutor()
        graph = _simple_graph(partitions=32, cost=50_000.0)
        runtimes = [executor.execute(graph, t).makespan for t in (2, 4, 8, 16, 32)]
        assert all(a >= b - 1e-9 for a, b in zip(runtimes, runtimes[1:]))

    def test_amdahl_floor(self):
        """Beyond the parallelism limit, extra tokens stop helping."""
        executor = ClusterExecutor()
        graph = _simple_graph(partitions=8)
        at_parallelism = executor.execute(graph, 8).makespan
        beyond = executor.execute(graph, 64).makespan
        assert beyond == pytest.approx(at_parallelism)

    def test_all_stages_finish(self):
        executor = ClusterExecutor()
        graph = _simple_graph()
        result = executor.execute(graph, 4)
        assert set(result.stage_finish_times) == set(graph.stages)
        assert result.makespan == pytest.approx(
            max(result.stage_finish_times.values())
        )

    def test_work_is_conserved(self):
        """Skyline area equals the total task-seconds of the job."""
        executor = ClusterExecutor(cost_model=CostModel(
            seconds_per_cost_unit=1e-3, startup_seconds=1.0))
        graph = _simple_graph(partitions=4, cost=10_000.0)
        result = executor.execute(graph, 2)
        expected = sum(
            s.num_tasks * s.task_duration(executor.cost_model)
            for s in graph.stages.values()
        )
        assert result.skyline.area == pytest.approx(expected, rel=1e-6)

    def test_noise_changes_replicas(self):
        executor = ClusterExecutor(noise_scale=0.2)
        graph = _simple_graph()
        a = executor.execute(graph, 4, rng=np.random.default_rng(1))
        b = executor.execute(graph, 4, rng=np.random.default_rng(2))
        assert a.skyline != b.skyline

    def test_straggler_lengthens_runtime(self):
        graph = _simple_graph(partitions=16, cost=50_000.0)
        clean = ClusterExecutor().execute(graph, 16).makespan
        noisy = ClusterExecutor(
            straggler_rate=0.5, straggler_factor=4.0
        ).execute(graph, 16, rng=np.random.default_rng(0)).makespan
        assert noisy > clean

    def test_invalid_config(self):
        with pytest.raises(ExecutionError):
            ClusterExecutor(noise_scale=-1)
        with pytest.raises(ExecutionError):
            ClusterExecutor(straggler_rate=1.5)
        with pytest.raises(ExecutionError):
            ClusterExecutor(straggler_factor=0.5)


class TestIntervalsToSkyline:
    def test_single_task(self):
        sky = _intervals_to_skyline(
            np.array([0.0]), np.array([3.0]), makespan=3.0
        )
        assert list(sky.usage) == [1, 1, 1]

    def test_fractional_coverage(self):
        sky = _intervals_to_skyline(
            np.array([0.5]), np.array([1.5]), makespan=1.5
        )
        assert sky.usage[0] == pytest.approx(0.5)
        assert sky.usage[1] == pytest.approx(0.5)

    def test_overlapping_tasks(self):
        sky = _intervals_to_skyline(
            np.array([0.0, 0.0, 1.0]),
            np.array([2.0, 1.0, 2.0]),
            makespan=2.0,
        )
        assert list(sky.usage) == [2, 2]

    def test_area_equals_total_duration(self):
        rng = np.random.default_rng(3)
        starts = rng.uniform(0, 50, 200)
        ends = starts + rng.uniform(0.1, 10, 200)
        sky = _intervals_to_skyline(starts, ends, makespan=float(ends.max()))
        assert sky.area == pytest.approx((ends - starts).sum(), rel=1e-9)
