"""Unit tests for job signatures and repository persistence."""

import numpy as np
import pytest

from repro.exceptions import ExecutionError
from repro.scope import (
    WorkloadConfig,
    WorkloadGenerator,
    load_repository,
    plan_signature,
    run_workload,
    save_repository,
)


class TestPlanSignature:
    def test_deterministic(self, workload_jobs):
        plan = workload_jobs[0].plan
        assert plan_signature(plan) == plan_signature(plan)

    def test_recurring_instances_share_signature(self):
        generator = WorkloadGenerator(
            WorkloadConfig(recurring_fraction=1.0, num_templates=1), seed=1
        )
        jobs = generator.generate(6)
        signatures = {plan_signature(j.plan) for j in jobs}
        assert len(signatures) == 1

    def test_different_templates_differ(self):
        generator = WorkloadGenerator(
            WorkloadConfig(recurring_fraction=0.0), seed=1
        )
        jobs = generator.generate(20)
        signatures = {plan_signature(j.plan) for j in jobs}
        # Ad-hoc plans are structurally diverse; collisions are possible
        # for tiny plans but must be rare.
        assert len(signatures) >= 15

    def test_estimate_drift_does_not_change_signature(self, workload_jobs):
        """Signatures must ignore cardinalities/costs (which drift)."""
        import copy

        plan = workload_jobs[0].plan
        drifted = copy.deepcopy(plan)
        for node in drifted.nodes.values():
            node.output_cardinality *= 3.7
            node.cost_exclusive *= 0.2
        assert plan_signature(plan) == plan_signature(drifted)


class TestRepositoryPersistence:
    def test_roundtrip(self, repository, tmp_path):
        path = save_repository(repository, tmp_path / "repo")
        assert path.suffix == ".npz"
        loaded = load_repository(path)
        assert len(loaded) == len(repository)
        for original in repository:
            restored = loaded.get(original.job_id)
            assert restored.skyline == original.skyline
            assert restored.requested_tokens == original.requested_tokens
            assert restored.submit_day == original.submit_day
            assert restored.recurring == original.recurring
            assert restored.plan.template_id == original.plan.template_id
            assert restored.plan.num_operators == original.plan.num_operators

    def test_roundtrip_preserves_estimates(self, repository, tmp_path):
        path = save_repository(repository, tmp_path / "repo.npz")
        loaded = load_repository(path)
        original = repository.records()[0]
        restored = loaded.get(original.job_id)
        for op_id, node in original.plan.nodes.items():
            other = restored.plan.nodes[op_id]
            assert other.kind == node.kind
            assert other.children == node.children
            assert other.output_cardinality == pytest.approx(
                node.output_cardinality
            )
            assert other.true_cost == pytest.approx(node.true_cost)

    def test_roundtrip_preserves_signatures(self, repository, tmp_path):
        path = save_repository(repository, tmp_path / "repo.npz")
        loaded = load_repository(path)
        for original in repository:
            restored = loaded.get(original.job_id)
            assert plan_signature(restored.plan) == plan_signature(
                original.plan
            )

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ExecutionError):
            load_repository(tmp_path / "ghost.npz")

    def test_empty_repository_rejected(self, tmp_path):
        from repro.scope import JobRepository

        with pytest.raises(ExecutionError):
            save_repository(JobRepository(), tmp_path / "empty.npz")

    def test_loaded_repository_is_trainable(self, repository, tmp_path):
        """The persisted form feeds the normal pipeline unchanged."""
        from repro.models import build_dataset

        path = save_repository(repository, tmp_path / "repo.npz")
        loaded = load_repository(path)
        dataset = build_dataset(loaded)
        assert len(dataset) > 0
        assert np.all(np.isfinite(dataset.job_feature_matrix()))
