"""Tests for the unified metrics registry, including quantile exactness.

The histogram satellite of the observability PR: p50/p95/p99 estimates
interpolate inside log-spaced buckets, so the property checked here is
*bucket-exactness* — the estimate must fall inside the bucket that
contains the exact nearest-rank quantile (and is clamped into
``[min, max]`` of the observed values). A float-fuzz off-by-one at
bucket boundaries (``0.3 * 10 == 3.0000000000000004`` selecting rank 4
instead of 3) is covered by an explicit regression test.
"""

import bisect
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ObservabilityError
from repro.obs.metrics import (
    LatencyHistogram,
    MetricsRegistry,
    get_registry,
)


def exact_nearest_rank(values: list[float], q: float) -> float:
    """The inverted-CDF q-quantile: value of rank ceil(q*n) (1-based)."""
    ordered = sorted(values)
    rank = min(len(ordered), max(1, math.ceil(q * len(ordered) - 1e-9)))
    return ordered[rank - 1]


def bucket_of(bounds: list[float], value: float) -> tuple[float, float]:
    """The (lower, upper) edges of the bucket holding ``value``."""
    index = bisect.bisect_left(bounds, value)
    if index >= len(bounds):
        return bounds[-1], math.inf
    lower = bounds[index - 1] if index else 0.0
    return lower, bounds[index]


class TestQuantileExactness:
    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=200.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=120,
        ),
        st.sampled_from([0.5, 0.9, 0.95, 0.99, 1.0]),
    )
    def test_estimate_within_bucket_of_exact_quantile(self, values, q):
        hist = LatencyHistogram("h")
        for v in values:
            hist.record(v)
        estimate = hist.quantile(q)
        exact = exact_nearest_rank(values, q)
        lower, upper = bucket_of(hist._bounds, exact)
        # Clamping into [min, max] can only move the estimate *towards*
        # the data, never out of the exact quantile's bucket beyond the
        # observed extremes.
        assert min(lower, min(values)) <= estimate
        assert estimate <= min(upper, max(values)) or math.isinf(upper)
        assert min(values) <= estimate <= max(values)

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=1e-5, max_value=99.0,
                      allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=60,
        )
    )
    def test_quantiles_monotone_in_q(self, values):
        hist = LatencyHistogram("h")
        for v in values:
            hist.record(v)
        qs = [0.1, 0.5, 0.9, 0.95, 0.99, 1.0]
        estimates = [hist.quantile(q) for q in qs]
        assert all(a <= b + 1e-12 for a, b in zip(estimates, estimates[1:]))

    def test_float_fuzz_rank_boundary_regression(self):
        # 10 observations, one per visibly distinct bucket. q=0.3 must
        # select the 3rd smallest (nearest rank ceil(0.3*10)=3), but
        # 0.3*10 == 3.0000000000000004 in floating point — the naive
        # cumulative>=q*n rule skips to the 4th observation's bucket.
        values = [0.001 * (4**i) for i in range(10)]
        hist = LatencyHistogram("h", bounds=[v * 1.5 for v in values])
        for v in values:
            hist.record(v)
        estimate = hist.quantile(0.3)
        exact = exact_nearest_rank(values, 0.3)
        lower, upper = bucket_of(hist._bounds, exact)
        assert lower <= estimate <= upper

    def test_p99_against_exact_on_dense_data(self):
        values = [i / 1000.0 for i in range(1, 1001)]
        hist = LatencyHistogram("h")
        for v in values:
            hist.record(v)
        exact = exact_nearest_rank(values, 0.99)
        lower, upper = bucket_of(hist._bounds, exact)
        assert lower <= hist.quantile(0.99) <= upper

    def test_bucket_boundary_values_land_upper_inclusive(self):
        hist = LatencyHistogram("h", bounds=[1.0, 2.0, 4.0])
        for v in (1.0, 2.0, 4.0):
            hist.record(v)
        # Each value sits exactly on a bound: bucket i is (b[i-1], b[i]].
        assert hist.quantile(1.0) == 4.0
        assert 1.0 <= hist.quantile(0.34) <= 2.0

    def test_overflow_bucket_reports_max(self):
        hist = LatencyHistogram("h", bounds=[0.1, 1.0])
        hist.record(50.0)
        hist.record(80.0)
        assert hist.quantile(0.99) == 80.0


class TestLabels:
    def test_labeled_counters_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("responses", status="ok").increment(2)
        registry.counter("responses", status="error").increment()
        registry.counter("responses").increment(5)
        counters = registry.snapshot()["counters"]
        assert counters["responses{status=ok}"] == 2
        assert counters["responses{status=error}"] == 1
        assert counters["responses"] == 5

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("c", b=1, a=2).increment()
        registry.counter("c", a=2, b=1).increment()
        counters = registry.snapshot()["counters"]
        assert counters == {"c{a=2,b=1}": 2}

    def test_labeled_histograms_and_gauges(self):
        registry = MetricsRegistry()
        registry.histogram("lat_s", model="nn").record(0.5)
        registry.register_gauge("depth", lambda: 3, queue="main")
        snap = registry.snapshot()
        assert snap["histograms"]["lat_s{model=nn}"]["count"] == 1
        assert snap["gauges"]["depth{queue=main}"] == 3


class TestRegistry:
    def test_process_wide_registry_is_shared(self):
        assert get_registry() is get_registry()

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").increment()
        registry.histogram("h_s").record(0.1)
        registry.register_gauge("g", lambda: 1)
        registry.reset()
        snap = registry.snapshot()
        assert snap == {"counters": {}, "histograms": {}, "gauges": {}}

    def test_validation_errors(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("c").increment(-1)
        with pytest.raises(ObservabilityError):
            registry.histogram("h").record(float("nan"))
        with pytest.raises(ObservabilityError):
            registry.histogram("h").quantile(1.5)
        with pytest.raises(ObservabilityError):
            LatencyHistogram("h", bounds=[])


class TestNumpyCrossCheck:
    def test_matches_numpy_inverted_cdf_bucketwise(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(-4.0, 1.0, size=500)
        hist = LatencyHistogram("h")
        for v in values:
            hist.record(float(v))
        for q in (0.5, 0.95, 0.99):
            exact = float(np.quantile(values, q, method="inverted_cdf"))
            lower, upper = bucket_of(hist._bounds, exact)
            assert lower <= hist.quantile(q) <= upper
