"""Tests for repro.replay arrival processes, tenants, and reports."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReplayError
from repro.replay import (
    ARRIVAL_KINDS,
    ArrivalSpec,
    TenantSpec,
    arrival_times,
    default_tenants,
    load_trace,
    split_round_robin,
)
from repro.replay.report import downsample, utilization_timeline
from repro.scope.cluster import QueueOutcome


def rng(seed=0):
    return np.random.default_rng(seed)


class TestArrivalSpec:
    def test_unknown_kind(self):
        with pytest.raises(ReplayError, match="unknown arrival kind"):
            ArrivalSpec(kind="weibull")

    def test_gap_must_be_positive(self):
        with pytest.raises(ReplayError, match="gap"):
            ArrivalSpec(mean_gap_s=0.0)

    def test_amplitude_bounds(self):
        with pytest.raises(ReplayError, match="amplitude"):
            ArrivalSpec(kind="diurnal", amplitude=1.0)

    def test_trace_needs_timestamps(self):
        with pytest.raises(ReplayError, match="timestamps"):
            ArrivalSpec(kind="trace")

    def test_trace_must_be_sorted(self):
        with pytest.raises(ReplayError, match="sorted"):
            ArrivalSpec(kind="trace", trace=(3.0, 1.0))


class TestArrivalTimes:
    @pytest.mark.parametrize("kind", ["poisson", "diurnal", "bursty"])
    def test_deterministic_given_seed(self, kind):
        spec = ArrivalSpec(kind=kind, mean_gap_s=5.0)
        a = arrival_times(spec, 500.0, rng(42))
        b = arrival_times(spec, 500.0, rng(42))
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("kind", ["poisson", "diurnal", "bursty"])
    def test_sorted_within_window(self, kind):
        spec = ArrivalSpec(kind=kind, mean_gap_s=3.0)
        times = arrival_times(spec, 300.0, rng(7))
        assert times.size > 0
        assert (times >= 0).all() and (times < 300.0).all()
        assert (np.diff(times) >= 0).all()

    def test_different_seeds_differ(self):
        spec = ArrivalSpec(mean_gap_s=5.0)
        a = arrival_times(spec, 500.0, rng(1))
        b = arrival_times(spec, 500.0, rng(2))
        assert a.size != b.size or not np.array_equal(a, b)

    def test_poisson_rate_roughly_respected(self):
        spec = ArrivalSpec(mean_gap_s=2.0)
        times = arrival_times(spec, 10_000.0, rng(0))
        assert times.size == pytest.approx(5000, rel=0.1)

    def test_bursty_is_burstier_than_poisson(self):
        # Dispersion of per-window counts: MMPP > Poisson.
        window = 50.0
        def dispersion(kind):
            spec = ArrivalSpec(kind=kind, mean_gap_s=5.0)
            times = arrival_times(spec, 20_000.0, rng(3))
            counts = np.bincount((times // window).astype(int))
            return counts.var() / counts.mean()
        assert dispersion("bursty") > 2 * dispersion("poisson")

    def test_trace_is_clipped_to_duration(self):
        spec = ArrivalSpec(kind="trace", trace=(1.0, 2.0, 99.0))
        times = arrival_times(spec, 10.0, rng(0))
        np.testing.assert_array_equal(times, [1.0, 2.0])

    def test_duration_must_be_positive(self):
        with pytest.raises(ReplayError, match="duration"):
            arrival_times(ArrivalSpec(), 0.0, rng(0))

    @settings(max_examples=25, deadline=None)
    @given(
        kind=st.sampled_from([k for k in ARRIVAL_KINDS if k != "trace"]),
        gap=st.floats(min_value=0.5, max_value=60.0),
        duration=st.floats(min_value=10.0, max_value=2_000.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_property_sorted_and_bounded(self, kind, gap, duration, seed):
        spec = ArrivalSpec(kind=kind, mean_gap_s=gap)
        times = arrival_times(spec, duration, rng(seed))
        assert (times >= 0).all()
        assert (times < duration).all()
        assert (np.diff(times) >= 0).all()


class TestTraceFiles:
    def test_load_trace(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("5.0\n# comment\n1.5\n\n3 # inline\n")
        assert load_trace(path) == (1.5, 3.0, 5.0)

    def test_load_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("1.0\nnope\n")
        with pytest.raises(ReplayError, match="not a timestamp"):
            load_trace(path)

    def test_load_trace_rejects_empty(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ReplayError, match="no timestamps"):
            load_trace(path)

    def test_split_round_robin(self):
        parts = split_round_robin((1.0, 2.0, 3.0, 4.0, 5.0), 2)
        assert parts == [(1.0, 3.0, 5.0), (2.0, 4.0)]

    def test_split_preserves_every_timestamp(self):
        times = tuple(float(t) for t in range(17))
        parts = split_round_robin(times, 5)
        assert sorted(t for p in parts for t in p) == list(times)


class TestTenants:
    def test_default_tenants_rotate_families(self):
        tenants = default_tenants(5)
        assert [t.family for t in tenants] == [
            "tpch", "streaming", "ml_training", "etl_skew", "tpch",
        ]
        assert len({t.name for t in tenants}) == 5

    def test_unknown_family(self):
        with pytest.raises(ReplayError, match="unknown workload family"):
            TenantSpec(name="t", family="graph")

    def test_unattainable_slo(self):
        with pytest.raises(ReplayError, match="unattainable"):
            TenantSpec(name="t", slo_slowdown=0.5)

    def test_need_at_least_one(self):
        with pytest.raises(ReplayError):
            default_tenants(0)


class TestReportHelpers:
    def outcome(self, job_id, start, finish, tokens):
        return QueueOutcome(
            job_id=job_id,
            arrival_time=start,
            start_time=start,
            finish_time=finish,
            tokens=tokens,
        )

    def test_utilization_timeline_full_pool(self):
        # One job holding the whole pool for the whole makespan.
        outs = [self.outcome("a", 0.0, 100.0, 10)]
        timeline = utilization_timeline(outs, capacity=10, bins=4)
        assert timeline == pytest.approx((1.0, 1.0, 1.0, 1.0))

    def test_utilization_timeline_integrates_overlap(self):
        # One busy job plus an idle-pool tail: bins span [0, makespan].
        outs = [
            self.outcome("a", 0.0, 50.0, 10),
            self.outcome("b", 75.0, 100.0, 5),
        ]
        timeline = utilization_timeline(outs, capacity=10, bins=4)
        assert timeline == pytest.approx((1.0, 1.0, 0.0, 0.5))

    def test_downsample_keeps_endpoints(self):
        series = list(range(1000))
        thinned = downsample(series, points=10)
        assert len(thinned) <= 10
        assert thinned[0] == 0 and thinned[-1] == 999

    def test_downsample_short_series_untouched(self):
        assert downsample([1.0, None, 3.0]) == (1.0, None, 3.0)
