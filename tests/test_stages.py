"""Unit tests for stage decomposition and the cost model."""

import pytest

from repro.exceptions import PlanError
from repro.scope import CostModel, OperatorNode, QueryPlan, decompose_stages
from repro.scope.stages import MAX_TASKS_PER_STAGE


def _pipeline_plan() -> QueryPlan:
    """Extract -> Filter -> Project -> Sort -> Output.

    The first three pipeline into one stage; Sort is blocking and starts a
    second stage which Output joins.
    """
    nodes = {
        0: OperatorNode(op_id=0, kind="Extract", output_cardinality=100,
                        cost_exclusive=10, num_partitions=4),
        1: OperatorNode(op_id=1, kind="Filter", children=(0,),
                        cost_exclusive=2, num_partitions=4),
        2: OperatorNode(op_id=2, kind="Project", children=(1,),
                        cost_exclusive=1, num_partitions=4),
        3: OperatorNode(op_id=3, kind="Sort", children=(2,),
                        cost_exclusive=5, num_partitions=4),
        4: OperatorNode(op_id=4, kind="Output", children=(3,),
                        cost_exclusive=1, num_partitions=4),
    }
    return QueryPlan(job_id="pipeline", nodes=nodes)


class TestDecomposition:
    def test_pipelining_groups_unary_operators(self):
        graph = decompose_stages(_pipeline_plan())
        assert graph.num_stages == 2
        by_size = sorted(len(s.operator_ids) for s in graph.stages.values())
        assert by_size == [2, 3]

    def test_stage_dependencies_follow_data_flow(self):
        graph = decompose_stages(_pipeline_plan())
        order = graph.topological_order()
        assert len(order) == 2
        last = graph.stages[order[-1]]
        assert last.dependencies == (order[0],)

    def test_binary_operators_open_stage(self):
        nodes = {
            0: OperatorNode(op_id=0, kind="Extract", cost_exclusive=1),
            1: OperatorNode(op_id=1, kind="Extract", cost_exclusive=1),
            2: OperatorNode(op_id=2, kind="MergeJoin", children=(0, 1),
                            cost_exclusive=1),
            3: OperatorNode(op_id=3, kind="Output", children=(2,),
                            cost_exclusive=1),
        }
        graph = decompose_stages(QueryPlan(job_id="j", nodes=nodes))
        # Two source stages + join(+output) stage.
        assert graph.num_stages == 3

    def test_stage_work_uses_true_cost(self):
        nodes = {
            0: OperatorNode(op_id=0, kind="Extract", cost_exclusive=10,
                            true_cost=20),
        }
        graph = decompose_stages(QueryPlan(job_id="j", nodes=nodes))
        assert graph.total_work == pytest.approx(20.0)

    def test_stage_work_falls_back_to_estimate(self):
        nodes = {
            0: OperatorNode(op_id=0, kind="Extract", cost_exclusive=10),
        }
        graph = decompose_stages(QueryPlan(job_id="j", nodes=nodes))
        assert graph.total_work == pytest.approx(10.0)

    def test_task_count_capped(self):
        nodes = {
            0: OperatorNode(op_id=0, kind="Extract", cost_exclusive=1,
                            num_partitions=100_000),
        }
        graph = decompose_stages(QueryPlan(job_id="j", nodes=nodes))
        assert graph.max_parallelism == MAX_TASKS_PER_STAGE

    def test_generated_plans_decompose(self, workload_jobs):
        for job in workload_jobs[:15]:
            graph = decompose_stages(job.plan)
            assert graph.num_stages >= 1
            covered = {
                op for s in graph.stages.values() for op in s.operator_ids
            }
            assert covered == set(job.plan.nodes)
            graph.topological_order()  # must not raise


class TestCostModel:
    def test_task_seconds(self):
        model = CostModel(seconds_per_cost_unit=0.01, startup_seconds=2.0)
        assert model.task_seconds(1000.0, 10) == pytest.approx(3.0)

    def test_more_tasks_shorter_tasks(self):
        model = CostModel()
        assert model.task_seconds(1e6, 100) < model.task_seconds(1e6, 10)

    def test_rejects_zero_tasks(self):
        with pytest.raises(PlanError):
            CostModel().task_seconds(100.0, 0)

    def test_critical_path_at_least_longest_chain(self):
        graph = decompose_stages(_pipeline_plan())
        model = CostModel()
        critical = graph.critical_path_work(model)
        longest_single = max(
            s.task_duration(model) for s in graph.stages.values()
        )
        assert critical >= longest_single
