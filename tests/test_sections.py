"""Unit tests for skyline sectioning and utilization bands."""

import numpy as np
import pytest

from repro.exceptions import SkylineError
from repro.skyline import (
    Skyline,
    UtilizationBand,
    band_time_fractions,
    classify_bands,
    split_sections,
)


class TestSplitSections:
    def test_single_section_all_under(self):
        sections = split_sections(Skyline([1, 2, 1]), threshold=5)
        assert len(sections) == 1
        assert not sections[0].over
        assert sections[0].start == 0 and sections[0].end == 3

    def test_single_section_all_over(self):
        sections = split_sections(Skyline([7, 8]), threshold=5)
        assert len(sections) == 1
        assert sections[0].over

    def test_alternating_sections(self):
        sky = Skyline([2, 2, 8, 8, 3, 9])
        sections = split_sections(sky, threshold=5)
        assert [s.over for s in sections] == [False, True, False, True]
        assert [s.duration for s in sections] == [2, 2, 1, 1]

    def test_sections_cover_whole_skyline(self):
        sky = Skyline([1, 6, 2, 7, 7, 1])
        sections = split_sections(sky, threshold=4)
        assert sections[0].start == 0
        assert sections[-1].end == sky.duration
        for left, right in zip(sections[:-1], sections[1:]):
            assert left.end == right.start

    def test_usage_exactly_at_threshold_is_not_over(self):
        sections = split_sections(Skyline([5, 5]), threshold=5)
        assert len(sections) == 1
        assert not sections[0].over

    def test_section_area(self):
        sky = Skyline([2, 8, 8])
        sections = split_sections(sky, threshold=5)
        assert sections[0].area == 2.0
        assert sections[1].area == 16.0

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(SkylineError):
            split_sections(Skyline([1]), threshold=0)


class TestUtilizationBands:
    def test_segments_partition_time(self, peaky_skyline):
        segments = classify_bands(peaky_skyline)
        assert segments[0].start == 0
        assert segments[-1].end == peaky_skyline.duration
        total = sum(s.duration for s in segments)
        assert total == peaky_skyline.duration

    def test_band_boundaries(self):
        # allocation 100, low cutoff 0.25, high cutoff 0.5
        sky = Skyline([10, 30, 80])
        segments = classify_bands(sky, allocation=100)
        assert [s.band for s in segments] == [
            UtilizationBand.MINIMUM,
            UtilizationBand.LOW,
            UtilizationBand.HIGH,
        ]

    def test_fractions_sum_to_one(self, flat_skyline):
        fractions = band_time_fractions(flat_skyline)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_peaky_spends_most_time_low(self, peaky_skyline):
        fractions = band_time_fractions(peaky_skyline)
        low_time = (
            fractions[UtilizationBand.MINIMUM] + fractions[UtilizationBand.LOW]
        )
        assert low_time > fractions[UtilizationBand.HIGH]

    def test_flat_spends_most_time_high(self, flat_skyline):
        fractions = band_time_fractions(flat_skyline)
        assert fractions[UtilizationBand.HIGH] > 0.5

    def test_default_allocation_is_peak(self):
        sky = Skyline([50, 100])
        segments = classify_bands(sky)
        assert segments[-1].band == UtilizationBand.HIGH

    def test_invalid_cutoffs(self):
        with pytest.raises(SkylineError):
            classify_bands(Skyline([1]), low_cutoff=0.6, high_cutoff=0.5)

    def test_invalid_allocation(self):
        with pytest.raises(SkylineError):
            classify_bands(Skyline([1]), allocation=-1)
