"""Unit tests for the serving LRU caches."""

import threading

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.scope.signatures import plan_signature
from repro.serving import FeatureCache, LRUCache, RecommendationCache
from repro.serving.fallback import degraded_recommendation
from repro.tasq import featurize


class TestLRUCache:
    def test_basic_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("ghost") is None
        assert cache.get("ghost", default=-1) == -1

    def test_eviction_order_is_lru(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.get("a")  # refresh: "b" is now least recently used
        cache.put("d", 4)
        assert "b" not in cache
        assert cache.keys() == ["c", "a", "d"]
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # rewrite refreshes
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 10

    def test_hit_miss_accounting(self):
        cache = LRUCache(2)
        assert cache.hit_rate is None
        cache.put("a", 1)
        cache.get("a")
        cache.get("nope")
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["capacity"] == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ServingError):
            LRUCache(0)

    def test_concurrent_access(self):
        cache = LRUCache(64)

        def spin(offset):
            for i in range(500):
                cache.put((offset, i % 100), i)
                cache.get((offset, (i * 7) % 100))

        threads = [threading.Thread(target=spin, args=(t,)) for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 64


class TestRecommendationCache:
    def test_keyed_on_signature_and_tokens(self, workload_jobs):
        job = workload_jobs[0]
        signature = plan_signature(job.plan)
        rec = degraded_recommendation(job.plan, 100, 50)
        cache = RecommendationCache(8)
        cache.put(signature, 100, rec)
        assert cache.get(signature, 100) is rec
        assert cache.get(signature, 200) is None  # different request size
        assert cache.get("other-signature", 100) is None

    def test_shared_across_recurring_instances(self, workload_jobs):
        by_signature = {}
        pair = None
        for job in workload_jobs:
            signature = plan_signature(job.plan)
            if signature in by_signature:
                pair = (by_signature[signature], job)
                break
            by_signature[signature] = job
        assert pair is not None, "workload should contain recurring instances"
        first, second = pair
        cache = RecommendationCache(8)
        rec = degraded_recommendation(first.plan, 64, 32)
        cache.put(plan_signature(first.plan), 64, rec)
        # the recurring twin hits the same entry despite a different job id
        assert cache.get(plan_signature(second.plan), 64) is rec


class TestFeatureCache:
    def test_matches_direct_featurization(self, workload_jobs):
        plan = workload_jobs[0].plan
        cache = FeatureCache(8)
        cached = cache.features_for(plan)
        direct = featurize(plan)
        np.testing.assert_allclose(cached.job_vector, direct.job_vector)
        np.testing.assert_allclose(
            cached.graph.node_features, direct.graph.node_features
        )
        np.testing.assert_allclose(cached.graph.adjacency, direct.graph.adjacency)

    def test_second_lookup_hits(self, workload_jobs):
        plan = workload_jobs[0].plan
        cache = FeatureCache(8)
        first = cache.features_for(plan)
        second = cache.features_for(plan)
        assert first is second
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_instances_are_not_shared(self, workload_jobs):
        """Recurring twins share a signature but must not share features."""
        by_signature = {}
        pair = None
        for job in workload_jobs:
            signature = plan_signature(job.plan)
            if signature in by_signature:
                pair = (by_signature[signature], job)
                break
            by_signature[signature] = job
        assert pair is not None
        cache = FeatureCache(8)
        cache.features_for(pair[0].plan)
        cache.features_for(pair[1].plan)
        assert len(cache) == 2
