"""Unit tests for neural layers, heads, and optimizers."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml import (
    SGD,
    Activation,
    Adam,
    Dense,
    PCCParameterHead,
    Sequential,
    Tensor,
)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4, 3, rng)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_parameter_count(self, rng):
        layer = Dense(4, 3, rng)
        assert sum(p.data.size for p in layer.parameters()) == 4 * 3 + 3

    def test_rejects_bad_dims(self, rng):
        with pytest.raises(ModelError):
            Dense(0, 3, rng)

    def test_rejects_unknown_init(self, rng):
        with pytest.raises(ModelError):
            Dense(2, 2, rng, init="magic")


class TestActivationAndSequential:
    def test_relu_activation(self, rng):
        act = Activation("relu")
        out = act(Tensor(np.array([-1.0, 2.0])))
        assert list(out.data) == [0.0, 2.0]

    def test_unknown_activation(self):
        with pytest.raises(ModelError):
            Activation("swish9000")

    def test_sequential_composes(self, rng):
        net = Sequential(Dense(4, 8, rng), Activation("relu"), Dense(8, 2, rng))
        out = net(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)
        assert net.num_parameters() == (4 * 8 + 8) + (8 * 2 + 2)

    def test_sequential_needs_modules(self):
        with pytest.raises(ModelError):
            Sequential()


class TestPCCParameterHead:
    def test_sign_guarantee(self, rng):
        """The head structurally forces a <= 0 for any input."""
        head = PCCParameterHead(6, rng)
        inputs = Tensor(rng.normal(0, 100, size=(50, 6)))  # extreme inputs
        out = head(inputs)
        assert out.shape == (50, 2)
        assert np.all(out.data[:, 0] <= 0)

    def test_gradients_flow(self, rng):
        head = PCCParameterHead(3, rng)
        out = head(Tensor(rng.normal(size=(4, 3))))
        out.abs().sum().backward()
        for p in head.parameters():
            assert p.grad is not None


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0])
        weight = Tensor(np.zeros(2), requires_grad=True)

        def loss():
            delta = weight - Tensor(target)
            return (delta * delta).sum()

        return weight, target, loss

    def test_sgd_converges(self):
        weight, target, loss = self._quadratic_problem()
        optimizer = SGD([weight], learning_rate=0.1, momentum=0.5)
        for _ in range(100):
            optimizer.zero_grad()
            loss().backward()
            optimizer.step()
        assert np.allclose(weight.data, target, atol=1e-4)

    def test_adam_converges(self):
        weight, target, loss = self._quadratic_problem()
        optimizer = Adam([weight], learning_rate=0.2)
        for _ in range(200):
            optimizer.zero_grad()
            loss().backward()
            optimizer.step()
        assert np.allclose(weight.data, target, atol=1e-3)

    def test_zero_grad_clears(self):
        weight, _, loss = self._quadratic_problem()
        optimizer = SGD([weight], learning_rate=0.1)
        loss().backward()
        optimizer.zero_grad()
        assert weight.grad is None

    def test_step_skips_gradless_params(self):
        weight = Tensor(np.ones(2), requires_grad=True)
        optimizer = Adam([weight])
        optimizer.step()  # no gradient yet: must not crash or move
        assert np.allclose(weight.data, 1.0)

    def test_rejects_bad_config(self):
        weight = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ModelError):
            SGD([weight], learning_rate=0)
        with pytest.raises(ModelError):
            SGD([weight], momentum=1.5)
        with pytest.raises(ModelError):
            Adam([], learning_rate=0.1)
        with pytest.raises(ModelError):
            Adam([Tensor(np.ones(1))])  # requires_grad=False
