"""Consistent-hash ring: stability, churn bounds, cross-process determinism."""

import math
import multiprocessing
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ServingError
from repro.parallel import START_METHOD
from repro.serving.ring import ConsistentHashRing

KEYS = [f"sig-{i:04d}" for i in range(400)]

node_names = st.lists(
    st.sampled_from([f"shard-{i}" for i in range(12)]),
    min_size=2,
    max_size=8,
    unique=True,
)


class TestRingBasics:
    def test_empty_ring_cannot_route(self):
        with pytest.raises(ServingError):
            ConsistentHashRing([]).route("anything")

    def test_replicas_must_be_positive(self):
        with pytest.raises(ServingError):
            ConsistentHashRing(["a"], replicas=0)

    def test_duplicate_add_and_missing_remove_raise(self):
        ring = ConsistentHashRing(["a", "b"])
        with pytest.raises(ServingError):
            ring.add("a")
        with pytest.raises(ServingError):
            ring.remove("c")

    def test_membership_and_len(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert len(ring) == 3
        assert "b" in ring and "z" not in ring
        assert ring.nodes == ["a", "b", "c"]

    def test_single_node_owns_everything(self):
        ring = ConsistentHashRing(["only"])
        assert set(ring.route_many(KEYS)) == {"only"}

    def test_route_is_deterministic_within_a_process(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.route_many(KEYS) == ring.route_many(KEYS)

    def test_all_nodes_receive_traffic(self):
        ring = ConsistentHashRing([f"shard-{i}" for i in range(4)])
        owners = set(ring.route_many(KEYS))
        assert owners == {f"shard-{i}" for i in range(4)}


class TestRingProperties:
    @given(node_names)
    @settings(max_examples=25, deadline=None)
    def test_construction_order_does_not_matter(self, names):
        forward = ConsistentHashRing(list(names))
        backward = ConsistentHashRing(list(reversed(names)))
        assert forward.route_many(KEYS) == backward.route_many(KEYS)

    @given(node_names)
    @settings(max_examples=25, deadline=None)
    def test_adding_a_node_moves_at_most_its_fair_share(self, names):
        ring = ConsistentHashRing(list(names))
        before = ring.route_many(KEYS)
        ring.add("newcomer")
        after = ring.route_many(KEYS)
        moved = [
            (old, new) for old, new in zip(before, after) if old != new
        ]
        # Every key that moved must have moved *to* the new node — a key
        # changing owner between two pre-existing nodes would mean the
        # ring reshuffled beyond the newcomer's arcs.
        assert all(new == "newcomer" for _, new in moved)
        # Fair share is K/(N+1); allow slack for the finite vnode count
        # (hash variance shrinks as replicas grow, but never to zero).
        fair = math.ceil(len(KEYS) / (len(names) + 1))
        assert len(moved) <= 2 * fair + 8

    @given(node_names)
    @settings(max_examples=25, deadline=None)
    def test_removing_a_node_only_moves_its_own_keys(self, names):
        ring = ConsistentHashRing(list(names))
        before = ring.route_many(KEYS)
        victim = sorted(names)[0]
        ring.remove(victim)
        after = ring.route_many(KEYS)
        for old, new in zip(before, after):
            if old != victim:
                # Keys owned by surviving nodes must not move at all.
                assert new == old
            else:
                assert new != victim

    @given(node_names)
    @settings(max_examples=25, deadline=None)
    def test_add_then_remove_is_identity(self, names):
        ring = ConsistentHashRing(list(names))
        before = ring.route_many(KEYS)
        ring.add("transient")
        ring.remove("transient")
        assert ring.route_many(KEYS) == before


def _route_in_subprocess(names, keys, queue):
    ring = ConsistentHashRing(names)
    queue.put(ring.route_many(keys))


class TestCrossProcessDeterminism:
    def test_routing_matches_across_processes(self):
        """blake2b (not salted builtin hash) keeps routing process-stable.

        This is what lets the parent route requests that a *worker*
        process then caches: a disagreement would silently scatter a
        signature's traffic across shards.
        """
        names = [f"shard-{i}" for i in range(4)]
        local = ConsistentHashRing(names).route_many(KEYS)
        context = multiprocessing.get_context(START_METHOD)
        queue = context.Queue()
        process = context.Process(
            target=_route_in_subprocess, args=(names, KEYS, queue)
        )
        try:
            process.start()
        except OSError:
            pytest.skip("environment forbids subprocesses")
        try:
            remote = queue.get(timeout=30)
        finally:
            process.join(timeout=10)
        assert remote == local

    def test_ring_survives_pickling(self):
        ring = ConsistentHashRing(["a", "b", "c"], replicas=64)
        clone = pickle.loads(pickle.dumps(ring))
        assert clone.route_many(KEYS) == ring.route_many(KEYS)
