"""Unit tests for the shared NN/GNN training loop."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml.autograd import Tensor
from repro.ml.losses import LF1, LF2, LossInputs
from repro.ml.nn import Dense, PCCParameterHead, Sequential
from repro.models.training import TrainConfig, train_parameter_model


@pytest.fixture()
def toy_problem(rng):
    """A learnable mapping: features linearly determine (a, log b)."""
    n = 120
    features = rng.normal(size=(n, 4))
    true_a = -0.3 - 0.5 / (1 + np.exp(-features[:, 0]))  # in (-0.8, -0.3)
    true_log_b = 5.0 + 0.5 * features[:, 1]
    targets = np.column_stack([true_a, true_log_b])
    tokens = rng.uniform(10, 200, size=n)
    runtimes = np.exp(true_log_b + true_a * np.log(tokens))
    inputs = LossInputs(
        target_params=targets,
        param_scale=np.abs(targets).mean(axis=0),
        log_tokens=np.log(tokens),
        true_runtime=runtimes,
    )
    return features, inputs


def _make_network(rng):
    return Sequential(Dense(4, 16, rng), PCCParameterHead(16, rng))


class TestTrainConfig:
    def test_validation(self):
        with pytest.raises(ModelError):
            TrainConfig(epochs=0)
        with pytest.raises(ModelError):
            TrainConfig(batch_size=0)


class TestTrainingLoop:
    def test_loss_decreases(self, toy_problem, rng):
        features, inputs = toy_problem
        network = _make_network(rng)

        history = train_parameter_model(
            lambda batch: network(Tensor(features[batch])),
            network.parameters(),
            LF1(),
            inputs,
            num_examples=features.shape[0],
            config=TrainConfig(epochs=30, batch_size=32,
                               learning_rate=5e-3),
            rng=np.random.default_rng(0),
        )
        assert len(history) == 30
        assert history[-1] < 0.5 * history[0]

    def test_learns_toy_mapping(self, toy_problem, rng):
        features, inputs = toy_problem
        network = _make_network(rng)
        train_parameter_model(
            lambda batch: network(Tensor(features[batch])),
            network.parameters(),
            LF2(runtime_weight=0.3),
            inputs,
            num_examples=features.shape[0],
            config=TrainConfig(epochs=80, batch_size=32,
                               learning_rate=5e-3),
            rng=np.random.default_rng(1),
        )
        predictions = network(Tensor(features)).numpy()
        mae_a = np.abs(predictions[:, 0] - inputs.target_params[:, 0]).mean()
        assert mae_a < 0.12
        assert np.all(predictions[:, 0] <= 0)  # head guarantee survives

    def test_deterministic_given_rngs(self, toy_problem):
        features, inputs = toy_problem

        def run(seed):
            rng = np.random.default_rng(seed)
            network = _make_network(rng)
            train_parameter_model(
                lambda batch: network(Tensor(features[batch])),
                network.parameters(),
                LF1(),
                inputs,
                num_examples=features.shape[0],
                config=TrainConfig(epochs=5, batch_size=16),
                rng=np.random.default_rng(seed + 1),
            )
            return network(Tensor(features)).numpy()

        assert np.allclose(run(7), run(7))
        assert not np.allclose(run(7), run(8))

    def test_verbose_prints(self, toy_problem, rng, capsys):
        features, inputs = toy_problem
        network = _make_network(rng)
        train_parameter_model(
            lambda batch: network(Tensor(features[batch])),
            network.parameters(),
            LF1(),
            inputs,
            num_examples=features.shape[0],
            config=TrainConfig(epochs=2, verbose=True),
            rng=np.random.default_rng(0),
        )
        out = capsys.readouterr().out
        assert "epoch" in out
        assert "loss=" in out

    def test_batch_smaller_than_dataset(self, toy_problem, rng):
        """Trailing partial batches must be processed, not dropped."""
        features, inputs = toy_problem
        network = _make_network(rng)
        seen = []

        def forward(batch):
            seen.append(len(batch))
            return network(Tensor(features[batch]))

        train_parameter_model(
            forward,
            network.parameters(),
            LF1(),
            inputs,
            num_examples=features.shape[0],
            config=TrainConfig(epochs=1, batch_size=50, shuffle=False),
            rng=np.random.default_rng(0),
        )
        assert seen == [50, 50, 20]
