"""Unit tests for the AutoToken baseline and fine-grained models."""

import numpy as np
import pytest

from repro.baselines import AutoToken
from repro.exceptions import ModelError, NotFittedError
from repro.models import FineGrainedPCCModel, NNPCCModel, TrainConfig, build_dataset
from repro.scope import WorkloadConfig, WorkloadGenerator, run_workload


@pytest.fixture(scope="module")
def recurring_world():
    """A workload dominated by few templates, plus ad-hoc test jobs."""
    config = WorkloadConfig(recurring_fraction=0.8, num_templates=6)
    generator = WorkloadGenerator(config, seed=77)
    history = run_workload(generator.generate(120), seed=0)
    tomorrow = run_workload(generator.generate(50, start_day=1), seed=1)
    return history.records(), tomorrow.records()


class TestAutoToken:
    def test_fit_groups_recurring_jobs(self, recurring_world):
        history, _ = recurring_world
        model = AutoToken().fit(history)
        assert 1 <= model.num_groups <= 12

    def test_covers_recurring_not_adhoc(self, recurring_world):
        history, tomorrow = recurring_world
        model = AutoToken().fit(history)
        recurring = [r.plan for r in tomorrow if r.recurring]
        adhoc = [r.plan for r in tomorrow if not r.recurring]
        assert model.coverage(recurring) > 0.8
        if adhoc:
            assert model.coverage(adhoc) < 0.2

    def test_prediction_fields(self, recurring_world):
        history, tomorrow = recurring_world
        model = AutoToken().fit(history)
        covered = next(
            r for r in tomorrow if model.covers(r.plan)
        )
        prediction = model.predict(covered.plan)
        assert prediction is not None
        assert prediction.peak_tokens >= 1
        assert prediction.job_id == covered.job_id

    def test_uncovered_returns_none(self, recurring_world):
        history, tomorrow = recurring_world
        model = AutoToken().fit(history)
        uncovered = [r for r in tomorrow if not model.covers(r.plan)]
        if uncovered:
            assert model.predict(uncovered[0].plan) is None

    def test_peak_predictions_are_usable(self, recurring_world):
        """Predicted peaks land within a small factor of the true peaks."""
        history, tomorrow = recurring_world
        model = AutoToken().fit(history)
        ratios = []
        for record in tomorrow:
            prediction = model.predict(record.plan)
            if prediction is None or record.peak_tokens < 2:
                continue
            ratios.append(prediction.peak_tokens / record.peak_tokens)
        assert ratios, "no covered jobs to evaluate"
        assert 0.3 < np.median(ratios) < 3.0

    def test_not_fitted(self, recurring_world):
        _, tomorrow = recurring_world
        with pytest.raises(NotFittedError):
            AutoToken().predict(tomorrow[0].plan)

    def test_rejects_empty_history(self):
        with pytest.raises(ModelError):
            AutoToken().fit([])

    def test_rejects_bad_config(self):
        with pytest.raises(ModelError):
            AutoToken(min_group_size=1)
        with pytest.raises(ModelError):
            AutoToken(safety_quantile=0.2)


class TestFineGrained:
    @pytest.fixture(scope="class")
    def fitted(self, recurring_world):
        history, _ = recurring_world
        records = history
        dataset = build_dataset(records)
        plans = [r.plan for r in records if r.requested_tokens >= 2]
        model = FineGrainedPCCModel(
            model_factory=lambda: NNPCCModel(
                train_config=TrainConfig(epochs=15), seed=0
            ),
            min_group_size=5,
        )
        model.fit(dataset, plans=plans)
        return model, dataset, plans

    def test_groups_trained(self, fitted):
        model, _, _ = fitted
        assert model.num_groups >= 1

    def test_coverage_below_one(self, fitted, recurring_world):
        model, _, _ = fitted
        _, tomorrow = recurring_world
        coverage = model.coverage([r.plan for r in tomorrow])
        # The paper's point: fine-grained models cannot cover everything.
        assert 0 < coverage < 1

    def test_routed_prediction_on_covered_jobs(self, fitted, recurring_world):
        model, _, _ = fitted
        history, tomorrow = recurring_world
        covered_records = [
            r for r in tomorrow
            if r.requested_tokens >= 2 and model.covered_mask([r.plan])[0]
        ]
        assert covered_records
        dataset = build_dataset(covered_records)
        plans = [r.plan for r in covered_records]
        parameters = model.predict_parameters_routed(dataset, plans)
        assert parameters.shape == (len(covered_records), 2)
        assert np.all(parameters[:, 0] <= 0)  # still sign-guaranteed

        runtimes = model.predict_runtime_at_routed(
            dataset, dataset.observed_tokens(), plans
        )
        assert np.all(runtimes > 0)

    def test_uncovered_job_raises(self, fitted, recurring_world):
        model, _, _ = fitted
        _, tomorrow = recurring_world
        uncovered = [
            r for r in tomorrow
            if r.requested_tokens >= 2 and not model.covered_mask([r.plan])[0]
        ]
        if not uncovered:
            pytest.skip("every test job happened to be covered")
        dataset = build_dataset(uncovered[:1])
        with pytest.raises(ModelError):
            model.predict_parameters_routed(dataset, [uncovered[0].plan])

    def test_fit_requires_aligned_plans(self, recurring_world):
        history, _ = recurring_world
        dataset = build_dataset(history[:10])
        model = FineGrainedPCCModel(
            model_factory=lambda: NNPCCModel(
                train_config=TrainConfig(epochs=1)
            )
        )
        with pytest.raises(ModelError):
            model.fit(dataset, plans=None)

    def test_all_adhoc_history_rejected(self):
        config = WorkloadConfig(recurring_fraction=0.0)
        generator = WorkloadGenerator(config, seed=5)
        records = run_workload(generator.generate(20), seed=0).records()
        dataset = build_dataset(records)
        plans = [r.plan for r in records if r.requested_tokens >= 2]
        model = FineGrainedPCCModel(
            model_factory=lambda: NNPCCModel(
                train_config=TrainConfig(epochs=1)
            ),
            min_group_size=5,
        )
        with pytest.raises(ModelError):
            model.fit(dataset, plans=plans)
