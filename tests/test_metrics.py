"""Unit tests for evaluation metrics."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml import (
    fraction_non_increasing,
    mean_absolute_error,
    mean_absolute_percentage_error,
    median_absolute_percentage_error,
)


class TestMAE:
    def test_value(self):
        assert mean_absolute_error(
            np.array([1.0, 2.0]), np.array([2.0, 4.0])
        ) == pytest.approx(1.5)

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            mean_absolute_error(np.ones(2), np.ones(3))

    def test_empty(self):
        with pytest.raises(ModelError):
            mean_absolute_error(np.array([]), np.array([]))


class TestPercentageErrors:
    def test_median_ape(self):
        true = np.array([100.0, 100.0, 100.0])
        pred = np.array([110.0, 150.0, 100.0])
        assert median_absolute_percentage_error(true, pred) == pytest.approx(10.0)

    def test_mean_ape(self):
        true = np.array([100.0, 100.0])
        pred = np.array([110.0, 130.0])
        assert mean_absolute_percentage_error(true, pred) == pytest.approx(20.0)

    def test_rejects_nonpositive_targets(self):
        with pytest.raises(ModelError):
            median_absolute_percentage_error(
                np.array([0.0, 1.0]), np.array([1.0, 1.0])
            )

    def test_median_robust_to_outlier(self):
        true = np.full(5, 100.0)
        pred = np.array([101.0, 102.0, 103.0, 104.0, 10_000.0])
        assert median_absolute_percentage_error(true, pred) == pytest.approx(3.0)


class TestFractionNonIncreasing:
    def test_all_decreasing(self):
        curves = [np.array([3.0, 2.0, 1.0]), np.array([5.0, 5.0, 4.0])]
        assert fraction_non_increasing(curves) == 1.0

    def test_mixed(self):
        curves = [np.array([3.0, 2.0]), np.array([1.0, 2.0])]
        assert fraction_non_increasing(curves) == 0.5

    def test_tolerance(self):
        curves = [np.array([100.0, 105.0])]  # 5% increase
        assert fraction_non_increasing(curves) == 0.0
        assert fraction_non_increasing(curves, tolerance=0.10) == 1.0

    def test_single_point_curve_counts(self):
        assert fraction_non_increasing([np.array([1.0])]) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ModelError):
            fraction_non_increasing([])
