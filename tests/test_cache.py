"""repro.cache: content-addressed artifact memoization."""

import numpy as np
import pytest

from repro.cache import (
    ArtifactCache,
    features_cache_key,
    pcc_cache_key,
)
from repro.models.dataset import build_dataset
from repro.scope.generator import WorkloadGenerator
from repro.scope.repository import run_workload
from repro.scope.signatures import (
    plan_content_signature,
    plan_signature,
    skyline_signature,
)
from repro.skyline.skyline import Skyline


@pytest.fixture(scope="module")
def small_repo():
    jobs = WorkloadGenerator(seed=13).generate(12)
    return run_workload(jobs, seed=1)


class TestArtifactCache:
    def test_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = pcc_cache_key("abc", 100.0, 8, True)
        payload = {"a": -0.7, "rows": np.arange(4)}
        cache.put(key, payload)
        out = cache.get(key)
        assert out["a"] == payload["a"]
        assert np.array_equal(out["rows"], payload["rows"])
        assert cache.stats() == {"hits": 1, "misses": 0}

    def test_missing_key_returns_default(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get("0" * 40) is None
        assert cache.get("0" * 40, default="fallback") == "fallback"
        assert cache.stats()["misses"] == 2

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = features_cache_key("deadbeefdeadbeef")
        cache.put(key, (1, 2, 3))
        path = cache.path_for(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not path.exists()
        assert cache.stats() == {"hits": 0, "misses": 1}

    def test_sharded_layout(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = pcc_cache_key("xyz", 50.0, 8, True)
        path = cache.put(key, "v")
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.pkl"


class TestCacheKeys:
    def test_pcc_key_sensitive_to_every_parameter(self):
        base = pcc_cache_key("sig", 100.0, 8, True)
        assert pcc_cache_key("gis", 100.0, 8, True) != base
        assert pcc_cache_key("sig", 101.0, 8, True) != base
        assert pcc_cache_key("sig", 100.0, 9, True) != base
        assert pcc_cache_key("sig", 100.0, 8, False) != base
        assert pcc_cache_key("sig", 100.0, 8, True) == base

    def test_features_key_sensitive_to_signature(self):
        assert features_cache_key("aa") != features_cache_key("bb")
        assert features_cache_key("aa") == features_cache_key("aa")


class TestContentSignatures:
    def test_skyline_signature_tracks_content(self):
        a = Skyline(np.array([1.0, 2.0, 3.0]))
        b = Skyline(np.array([1.0, 2.0, 3.0]))
        c = Skyline(np.array([1.0, 2.0, 3.0001]))
        d = Skyline(np.array([1.0, 2.0, 3.0, 0.0]))
        assert skyline_signature(a) == skyline_signature(b)
        assert skyline_signature(a) != skyline_signature(c)
        assert skyline_signature(a) != skyline_signature(d)

    def test_plan_content_signature_sees_cardinality_drift(self, small_repo):
        record = small_repo.records()[0]
        plan = record.plan
        baseline = plan_content_signature(plan)
        assert plan_content_signature(plan) == baseline

        node = plan.nodes[next(iter(plan.nodes))]
        original = node.output_cardinality
        node.output_cardinality = original * 2.0 + 1.0
        try:
            # The structural signature is drift-invariant by design; the
            # content signature must move with the estimates.
            assert plan_signature(plan) == plan_signature(plan)
            assert plan_content_signature(plan) != baseline
        finally:
            node.output_cardinality = original


class TestCachedDatasetBuild:
    def test_warm_build_equals_cold_build(self, small_repo, tmp_path):
        cold_cache = ArtifactCache(tmp_path)
        cold = build_dataset(small_repo, cache=cold_cache)
        assert cold_cache.hits == 0
        assert cold_cache.misses > 0

        warm_cache = ArtifactCache(tmp_path)
        warm = build_dataset(small_repo, cache=warm_cache)
        assert warm_cache.misses == 0
        assert warm_cache.hits > 0

        uncached = build_dataset(small_repo)
        for a, b, c in zip(cold, warm, uncached):
            assert a.job_id == b.job_id == c.job_id
            assert a.target_pcc == b.target_pcc == c.target_pcc
            assert np.array_equal(a.job_features, b.job_features)
            assert np.array_equal(a.job_features, c.job_features)
            assert np.array_equal(
                a.graph.node_features, b.graph.node_features
            )
            assert np.array_equal(a.graph.adjacency, b.graph.adjacency)
            assert a.point_observations == b.point_observations
            assert a.point_observations == c.point_observations

    def test_cache_accepts_path_argument(self, small_repo, tmp_path):
        first = build_dataset(small_repo, cache=tmp_path / "store")
        second = build_dataset(small_repo, cache=tmp_path / "store")
        for a, b in zip(first, second):
            assert a.target_pcc == b.target_pcc

    def test_grid_points_change_invalidates_pcc_entries(
        self, small_repo, tmp_path
    ):
        cache = ArtifactCache(tmp_path)
        build_dataset(small_repo, grid_points=8, cache=cache)
        probe = ArtifactCache(tmp_path)
        build_dataset(small_repo, grid_points=9, cache=probe)
        # Features hit (plans unchanged); PCC entries are new keys.
        assert probe.hits > 0
        assert probe.misses > 0
