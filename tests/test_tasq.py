"""Unit tests for the TASQ pipelines, model store, and what-if analysis."""

import threading

import numpy as np
import pytest

from repro.exceptions import PipelineError
from repro.features.graph_features import plan_to_graph_sample
from repro.features.job_features import job_vector
from repro.models import TrainConfig, XGBoostSS
from repro.tasq import (
    ModelStore,
    ScoringPipeline,
    TasqConfig,
    TrainingPipeline,
    featurize,
    minimum_tokens_within_budget,
    token_reduction_report,
)


@pytest.fixture(scope="module")
def trained(repository):
    config = TasqConfig(
        train_gnn=False,
        nn_train_config=TrainConfig(epochs=20),
    )
    return TrainingPipeline(config).run(repository)


class TestModelStore:
    def test_register_and_get(self, trained):
        store = ModelStore()
        store.register("nn", trained.get("nn"), metadata={"note": "test"})
        record = store.get("nn")
        assert record.version == 1
        assert record.metadata["note"] == "test"
        assert "nn" in store

    def test_versions_increment(self, trained):
        store = ModelStore()
        store.register("nn", trained.get("nn"))
        store.register("nn", trained.get("nn"))
        assert store.get("nn").version == 2
        assert store.get("nn", version=1).version == 1

    def test_missing_model(self):
        with pytest.raises(PipelineError):
            ModelStore().get("ghost")

    def test_missing_version(self, trained):
        store = ModelStore()
        store.register("nn", trained.get("nn"))
        with pytest.raises(PipelineError):
            store.get("nn", version=9)

    def test_disk_roundtrip(self, trained, tmp_path):
        store = ModelStore(root=tmp_path)
        store.register("nn", trained.get("nn"))
        fresh = ModelStore(root=tmp_path)
        record = fresh.load_from_disk("nn", 1)
        assert record.name == "nn"
        assert fresh.get("nn").version == 1

    def test_latest_by_name(self, trained):
        store = ModelStore()
        store.register("nn", trained.get("nn"))
        store.register("nn", trained.get("nn"))
        assert store.latest("nn").version == 2

    def test_latest_across_names(self, trained):
        store = ModelStore()
        with pytest.raises(PipelineError):
            store.latest()
        store.register("nn", trained.get("nn"))
        store.register("xgboost_pl", trained.get("xgboost_pl"))
        assert store.latest().name == "xgboost_pl"
        store.register("nn", trained.get("nn"))
        latest = store.latest()
        assert (latest.name, latest.version) == ("nn", 2)

    def test_concurrent_register_and_get(self, trained):
        """Writers and readers race on the store without corruption."""
        store = ModelStore()
        model = trained.get("nn")
        store.register("nn", model)
        errors = []
        registrations_per_writer = 25

        def writer():
            try:
                for _ in range(registrations_per_writer):
                    store.register("nn", model)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader():
            try:
                for _ in range(200):
                    record = store.get("nn")
                    assert record.version >= 1
                    assert store.latest("nn").version >= record.version
                    assert "nn" in store
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # every registration got a unique, dense version number
        versions = [
            store.get("nn", version=v).version
            for v in range(1, 4 * registrations_per_writer + 2)
        ]
        assert versions == list(range(1, 4 * registrations_per_writer + 2))
        assert store.latest("nn").version == 4 * registrations_per_writer + 1


class TestTrainingPipeline:
    def test_trains_configured_models(self, trained):
        assert set(trained.models) == {"xgboost_ss", "xgboost_pl", "nn"}

    def test_registers_in_store(self, repository):
        store = ModelStore()
        config = TasqConfig(train_nn=False, train_gnn=False)
        TrainingPipeline(config, store=store).run(repository)
        assert store.names() == ["xgboost_pl", "xgboost_ss"]

    def test_rejects_empty_config(self, repository):
        config = TasqConfig(train_xgboost=False, train_nn=False, train_gnn=False)
        with pytest.raises(PipelineError):
            TrainingPipeline(config).run(repository)

    def test_get_unknown_model(self, trained):
        with pytest.raises(PipelineError):
            trained.get("transformer")


class TestScoringPipeline:
    def test_recommendation_fields(self, trained, workload_jobs):
        scorer = ScoringPipeline(trained.get("nn"))
        job = workload_jobs[0]
        rec = scorer.score(job.plan, job.requested_tokens)
        assert rec.job_id == job.job_id
        assert 1 <= rec.optimal_tokens <= job.requested_tokens
        assert rec.pcc.is_non_increasing
        assert rec.predicted_runtime_at_optimal >= rec.predicted_runtime_at_requested
        assert 0 <= rec.token_savings < 1
        assert rec.predicted_slowdown >= 0

    def test_batch_scoring(self, trained, workload_jobs):
        scorer = ScoringPipeline(trained.get("nn"))
        jobs = workload_jobs[:5]
        recs = scorer.score_batch(
            [j.plan for j in jobs], [j.requested_tokens for j in jobs]
        )
        assert len(recs) == 5

    def test_slo_floor_respected(self, trained, workload_jobs):
        job = workload_jobs[0]
        loose = ScoringPipeline(trained.get("nn"), improvement_threshold=0.5)
        tight = ScoringPipeline(
            trained.get("nn"), improvement_threshold=0.5, max_slowdown=0.01
        )
        loose_rec = loose.score(job.plan, job.requested_tokens)
        tight_rec = tight.score(job.plan, job.requested_tokens)
        assert tight_rec.optimal_tokens >= loose_rec.optimal_tokens
        assert tight_rec.predicted_slowdown <= 0.011

    def test_rejects_nonparametric_model(self, repository, dataset):
        model = XGBoostSS(seed=0).fit(dataset)
        scorer = ScoringPipeline(model)
        record = repository.records()[0]
        with pytest.raises(PipelineError):
            scorer.score(record.plan, record.requested_tokens)

    def test_rejects_bad_tokens(self, trained, workload_jobs):
        scorer = ScoringPipeline(trained.get("nn"))
        with pytest.raises(PipelineError):
            scorer.score(workload_jobs[0].plan, 0)

    def test_rejects_bad_threshold(self, trained):
        with pytest.raises(PipelineError):
            ScoringPipeline(trained.get("nn"), improvement_threshold=0)

    def test_misaligned_batch(self, trained, workload_jobs):
        scorer = ScoringPipeline(trained.get("nn"))
        with pytest.raises(PipelineError):
            scorer.score_batch([workload_jobs[0].plan], [10, 20])

    def test_misaligned_features(self, trained, workload_jobs):
        scorer = ScoringPipeline(trained.get("nn"))
        plan = workload_jobs[0].plan
        with pytest.raises(PipelineError):
            scorer.score_batch([plan], [10], [featurize(plan)] * 2)


class TestFeaturize:
    def test_matches_per_representation_featurizers(self, workload_jobs):
        plan = workload_jobs[0].plan
        features = featurize(plan)
        np.testing.assert_allclose(features.job_vector, job_vector(plan))
        direct = plan_to_graph_sample(plan)
        np.testing.assert_allclose(
            features.graph.node_features, direct.node_features
        )
        np.testing.assert_allclose(features.graph.adjacency, direct.adjacency)

    def test_precomputed_features_give_identical_recommendations(
        self, trained, workload_jobs
    ):
        scorer = ScoringPipeline(trained.get("nn"))
        jobs = workload_jobs[:5]
        plans = [j.plan for j in jobs]
        tokens = [j.requested_tokens for j in jobs]
        fresh = scorer.score_batch(plans, tokens)
        reused = scorer.score_batch(
            plans, tokens, [featurize(p) for p in plans]
        )
        for a, b in zip(fresh, reused):
            assert a.job_id == b.job_id
            assert a.optimal_tokens == b.optimal_tokens
            assert a.pcc.a == pytest.approx(b.pcc.a)
            assert a.pcc.b == pytest.approx(b.pcc.b)

    def test_single_score_accepts_features(self, trained, workload_jobs):
        scorer = ScoringPipeline(trained.get("nn"))
        job = workload_jobs[0]
        rec = scorer.score(
            job.plan, job.requested_tokens, features=featurize(job.plan)
        )
        assert rec.optimal_tokens == scorer.score(
            job.plan, job.requested_tokens
        ).optimal_tokens


class TestWhatIf:
    def test_minimum_tokens_monotone_in_budget(self, repository):
        record = max(repository.records(), key=lambda r: r.peak_tokens)
        tight = minimum_tokens_within_budget(record, 0.0)
        loose = minimum_tokens_within_budget(record, 0.10)
        assert loose <= tight <= record.requested_tokens

    def test_zero_budget_allows_trim_to_peak(self, repository):
        for record in repository.records()[:10]:
            minimum = minimum_tokens_within_budget(record, 0.0)
            # Allocating the (rounded-up) peak changes nothing.
            assert minimum <= int(np.ceil(record.peak_tokens)) + 1

    def test_report_fractions_sum_to_one(self, repository):
        report = token_reduction_report(repository, 0.05)
        assert sum(report.bucket_fractions.values()) == pytest.approx(1.0)
        assert 0 <= report.fraction_reducible() <= 1
        assert 0 <= report.fraction_halvable() <= 1

    def test_looser_budget_more_reducible(self, repository):
        strict = token_reduction_report(repository, 0.0)
        loose = token_reduction_report(repository, 0.10)
        assert loose.fraction_reducible() >= strict.fraction_reducible()
        assert loose.mean_reduction >= strict.mean_reduction

    def test_rejects_negative_budget(self, repository):
        with pytest.raises(PipelineError):
            token_reduction_report(repository, -0.1)

    def test_rejects_empty(self):
        with pytest.raises(PipelineError):
            token_reduction_report([], 0.0)
