"""Unit tests for allocation policies (Figure 1)."""

import numpy as np
import pytest

from repro.exceptions import SkylineError
from repro.skyline import (
    AdaptivePeakAllocation,
    DefaultAllocation,
    PeakAllocation,
    Skyline,
    evaluate_policy,
)


@pytest.fixture()
def figure1_skyline():
    """A job using < 80 tokens while 125 are allocated by default."""
    usage = np.concatenate(
        [np.linspace(5, 78, 40), np.linspace(78, 20, 30), np.linspace(20, 60, 30)]
    )
    return Skyline(usage)


class TestDefaultAllocation:
    def test_flat_curve(self, figure1_skyline):
        curve = DefaultAllocation(125).allocation_curve(figure1_skyline)
        assert np.all(curve == 125)
        assert curve.size == figure1_skyline.duration

    def test_rejects_nonpositive(self):
        with pytest.raises(SkylineError):
            DefaultAllocation(0)


class TestPeakAllocation:
    def test_curve_equals_peak(self, figure1_skyline):
        curve = PeakAllocation().allocation_curve(figure1_skyline)
        assert np.all(curve == figure1_skyline.peak)


class TestAdaptivePeakAllocation:
    def test_curve_is_non_increasing(self, figure1_skyline):
        curve = AdaptivePeakAllocation().allocation_curve(figure1_skyline)
        assert np.all(np.diff(curve) <= 0)

    def test_curve_dominates_usage(self, figure1_skyline):
        curve = AdaptivePeakAllocation().allocation_curve(figure1_skyline)
        assert np.all(curve >= figure1_skyline.usage - 1e-12)

    def test_starts_at_global_peak(self, figure1_skyline):
        curve = AdaptivePeakAllocation().allocation_curve(figure1_skyline)
        assert curve[0] == figure1_skyline.peak

    def test_monotone_decreasing_job(self):
        sky = Skyline([9, 6, 3])
        curve = AdaptivePeakAllocation().allocation_curve(sky)
        assert list(curve) == [9, 6, 3]


class TestPolicyOrdering:
    def test_waste_ordering_matches_figure1(self, figure1_skyline):
        """Default wastes more than peak, peak more than adaptive peak."""
        default = evaluate_policy(DefaultAllocation(125), figure1_skyline)
        peak = evaluate_policy(PeakAllocation(), figure1_skyline)
        adaptive = evaluate_policy(AdaptivePeakAllocation(), figure1_skyline)
        assert default.wasted > peak.wasted > adaptive.wasted
        assert adaptive.wasted > 0  # valleys still waste under adaptive peak

    def test_report_accounting(self, figure1_skyline):
        report = evaluate_policy(PeakAllocation(), figure1_skyline)
        assert report.total_allocated == pytest.approx(
            figure1_skyline.peak * figure1_skyline.duration
        )
        assert report.total_used + report.wasted == pytest.approx(
            report.total_allocated
        )
        assert 0 <= report.waste_fraction <= 1

    def test_under_allocation_has_no_negative_waste(self):
        sky = Skyline([10, 10])
        report = evaluate_policy(DefaultAllocation(5), sky)
        assert report.wasted == 0.0
        assert report.total_used == 10.0
