"""Deeper tests for the what-if analysis (Figure 2 machinery)."""

import numpy as np
import pytest

from repro.arepas import AREPAS
from repro.exceptions import PipelineError
from repro.scope import OperatorNode, QueryPlan, TelemetryRecord
from repro.skyline import Skyline
from repro.tasq import minimum_tokens_within_budget, token_reduction_report
from repro.tasq.whatif import REDUCTION_BUCKETS


def _record(usage, requested, job_id="job"):
    plan = QueryPlan(
        job_id=job_id,
        nodes={0: OperatorNode(op_id=0, kind="Extract", cost_exclusive=1)},
    )
    return TelemetryRecord(
        job_id=job_id,
        plan=plan,
        requested_tokens=requested,
        skyline=Skyline(usage),
        submit_day=0,
        recurring=False,
    )


class TestMinimumTokens:
    def test_binary_search_matches_linear_scan(self):
        """Closed-loop check: the search equals brute force."""
        usage = np.concatenate(
            [np.full(30, 12.0), np.full(10, 40.0), np.full(30, 6.0)]
        )
        record = _record(usage, requested=64)
        simulator = AREPAS()
        for budget in (0.0, 0.05, 0.25):
            found = minimum_tokens_within_budget(record, budget, simulator)
            limit = record.runtime * (1 + budget)
            brute = next(
                tokens
                for tokens in range(1, record.requested_tokens + 1)
                if simulator.runtime(record.skyline, tokens) <= limit
            )
            assert found == brute

    def test_over_allocated_job_trims_free_of_charge(self):
        usage = np.full(60, 10.0)  # flat at 10 tokens, requested 100
        record = _record(usage, requested=100)
        assert minimum_tokens_within_budget(record, 0.0) == 10

    def test_fully_utilised_job_cannot_trim(self):
        usage = np.full(60, 100.0)
        record = _record(usage, requested=100)
        # Any reduction lengthens the run; with zero budget nothing moves.
        assert minimum_tokens_within_budget(record, 0.0) == 100

    def test_budget_unlocks_reduction(self):
        usage = np.full(60, 100.0)
        record = _record(usage, requested=100)
        with_budget = minimum_tokens_within_budget(record, 0.25)
        assert with_budget < 100
        simulator = AREPAS()
        assert (
            simulator.runtime(record.skyline, with_budget)
            <= record.runtime * 1.25
        )

    def test_rejects_negative_budget(self):
        record = _record(np.full(10, 5.0), requested=10)
        with pytest.raises(PipelineError):
            minimum_tokens_within_budget(record, -0.1)


class TestReductionBuckets:
    def test_bucket_edges_are_exclusive_inclusive(self):
        """A job reducible by exactly 25% lands in the 0-25% bucket."""
        records = [
            # peak 75 of 100 requested -> exactly 25% reduction possible
            _record(np.full(40, 75.0), requested=100, job_id="edge"),
        ]
        report = token_reduction_report(records, 0.0)
        assert report.bucket_fractions["0-25%"] == 1.0

    def test_zero_bucket(self):
        records = [_record(np.full(40, 100.0), requested=100, job_id="full")]
        report = token_reduction_report(records, 0.0)
        assert report.bucket_fractions["0%"] == 1.0
        assert report.fraction_reducible() == 0.0

    def test_deep_reduction_bucket(self):
        records = [_record(np.full(40, 10.0), requested=100, job_id="deep")]
        report = token_reduction_report(records, 0.0)
        assert report.bucket_fractions[">50%"] == 1.0
        assert report.fraction_halvable() == 1.0

    def test_bucket_labels_stable(self):
        labels = [label for label, _, _ in REDUCTION_BUCKETS]
        assert labels == ["0%", "0-25%", "25-50%", ">50%"]

    def test_mean_reduction(self):
        records = [
            _record(np.full(40, 100.0), requested=100, job_id="a"),  # 0%
            _record(np.full(40, 50.0), requested=100, job_id="b"),  # 50%
        ]
        report = token_reduction_report(records, 0.0)
        assert report.mean_reduction == pytest.approx(0.25)
