"""Integration tests: the full TASQ loop on fresh data (Figure 4).

These tests exercise the complete system the way the production pipeline
would: generate history, train, then score *unseen next-day* jobs and act
on the recommendations.
"""

import numpy as np
import pytest

from repro.arepas import AREPAS
from repro.models import build_dataset, evaluate_model, TrainConfig
from repro.scope import ClusterExecutor, WorkloadGenerator, decompose_stages, run_workload
from repro.tasq import ScoringPipeline, TasqConfig, TrainingPipeline


@pytest.fixture(scope="module")
def world():
    """History + next-day jobs from the same generator (shared templates)."""
    generator = WorkloadGenerator(seed=2024)
    history_jobs = generator.generate(150)
    tomorrow_jobs = generator.generate(40, start_day=1)
    repository = run_workload(history_jobs, seed=1)
    return generator, repository, tomorrow_jobs


@pytest.fixture(scope="module")
def trained(world):
    _, repository, _ = world
    config = TasqConfig(
        nn_train_config=TrainConfig(epochs=40),
        gnn_train_config=TrainConfig(epochs=8, batch_size=32,
                                     learning_rate=2e-3),
    )
    return TrainingPipeline(config).run(repository)


class TestEndToEnd:
    def test_models_generalize_to_next_day(self, world, trained):
        """Point prediction on unseen jobs lands in a usable error range."""
        _, _, tomorrow = world
        test_repo = run_workload(tomorrow, seed=2)
        test_dataset = build_dataset(test_repo)
        evaluation = evaluate_model(trained.get("nn"), test_dataset)
        # The paper reports <= 39% median error on unseen workloads; allow
        # ample slack at this tiny training scale.
        assert evaluation.runtime_median_ape < 120.0
        assert evaluation.pattern_non_increasing == 1.0

    def test_xgboost_beats_nn_at_point_prediction(self, world, trained):
        """The paper's consistent finding at the reference allocation."""
        _, _, tomorrow = world
        test_repo = run_workload(tomorrow, seed=2)
        test_dataset = build_dataset(test_repo)
        xgb = evaluate_model(trained.get("xgboost_ss"), test_dataset)
        nn = evaluate_model(trained.get("nn"), test_dataset)
        assert xgb.runtime_median_ape <= nn.runtime_median_ape + 5.0

    def test_recommendations_actually_hold_when_executed(self, world, trained):
        """Score unseen jobs, execute at the recommendation, check impact.

        The closed loop the paper cannot show for all jobs: we re-run the
        recommended allocation in the cluster simulator and verify the
        incurred slowdown stays moderate whenever tokens were cut.
        """
        _, _, tomorrow = world
        scorer = ScoringPipeline(
            trained.get("nn"), improvement_threshold=0.002, max_slowdown=0.10
        )
        executor = ClusterExecutor()
        slowdowns = []
        for job in tomorrow[:12]:
            recommendation = scorer.score(job.plan, job.requested_tokens)
            graph = decompose_stages(job.plan)
            base = executor.execute(graph, job.requested_tokens).makespan
            actual = executor.execute(graph, recommendation.optimal_tokens).makespan
            slowdowns.append(actual / base - 1.0)
        # Median incurred slowdown should stay within a loose multiple of
        # the 10% budget (the model is approximate, the budget predicted).
        assert np.median(slowdowns) < 0.5

    def test_arepas_consistent_with_executor(self, world):
        """AREPAS run-time estimates track real re-executions (Table 3)."""
        _, repository, _ = world
        executor = ClusterExecutor()
        simulator = AREPAS()
        errors = []
        for record in repository.records()[:15]:
            if record.peak_tokens < 4:
                continue
            graph = decompose_stages(record.plan)
            target_tokens = max(1, int(0.6 * record.requested_tokens))
            true_runtime = executor.execute(graph, target_tokens).makespan
            estimate = simulator.runtime(record.skyline, target_tokens)
            errors.append(abs(estimate - true_runtime) / true_runtime * 100)
        # The paper reports 9% median on real SCOPE; our executor violates
        # AREPAS's fixed-work assumption more strongly (wave scheduling),
        # so we only require the estimates to stay in a usable range.
        assert np.median(errors) < 45.0

    def test_store_roundtrip_serves_scoring(self, trained, world, tmp_path):
        """A model saved to disk can be reloaded and used for scoring."""
        from repro.tasq import ModelStore

        _, _, tomorrow = world
        store = ModelStore(root=tmp_path)
        store.register("nn", trained.get("nn"))
        reloaded = ModelStore(root=tmp_path).load_from_disk("nn", 1)
        scorer = ScoringPipeline(reloaded.model)
        recommendation = scorer.score(
            tomorrow[0].plan, tomorrow[0].requested_tokens
        )
        assert recommendation.optimal_tokens >= 1
