"""Unit tests for PCC families and the skyline-replay baseline."""

import numpy as np
import pytest

from repro.baselines import SkylineReplay
from repro.exceptions import FittingError, ModelError, NotFittedError
from repro.pcc import (
    AmdahlPCC,
    PCCFamily,
    PowerLawPCC,
    ShiftedPowerLawPCC,
    fit_family,
)


class TestAmdahlPCC:
    def test_runtime_formula(self):
        pcc = AmdahlPCC(serial=10.0, parallel=100.0)
        assert pcc.runtime(1) == pytest.approx(110.0)
        assert pcc.runtime(100) == pytest.approx(11.0)
        assert pcc.is_non_increasing

    def test_exact_recovery(self):
        true = AmdahlPCC(serial=30.0, parallel=600.0)
        tokens = np.array([1.0, 2.0, 5.0, 20.0, 100.0])
        fitted = AmdahlPCC.fit(tokens, np.asarray(true.runtime(tokens)))
        assert fitted.serial == pytest.approx(30.0, rel=1e-6)
        assert fitted.parallel == pytest.approx(600.0, rel=1e-6)

    def test_nonnegativity_enforced(self):
        # Increasing observations would need negative parallel work; the
        # NNLS fit clamps to a flat curve instead.
        tokens = np.array([1.0, 10.0])
        runtimes = np.array([10.0, 100.0])
        fitted = AmdahlPCC.fit(tokens, runtimes)
        assert fitted.parallel >= 0
        assert fitted.is_non_increasing

    def test_validation(self):
        with pytest.raises(FittingError):
            AmdahlPCC(serial=-1, parallel=10)
        with pytest.raises(FittingError):
            AmdahlPCC(serial=0, parallel=0)
        with pytest.raises(FittingError):
            AmdahlPCC(serial=1, parallel=1).runtime(0)


class TestShiftedPowerLaw:
    def test_reduces_to_power_law_when_c_zero(self):
        pcc = ShiftedPowerLawPCC(a=-0.8, b=500.0, c=0.0)
        plain = PowerLawPCC(a=-0.8, b=500.0)
        tokens = np.array([2.0, 10.0, 50.0])
        assert np.allclose(pcc.runtime(tokens), plain.runtime(tokens))

    def test_fits_floor_that_power_law_cannot(self):
        """A curve with a hard floor: the shifted family nails it."""
        tokens = np.geomspace(2, 200, 12)
        truth = 50.0 + 2000.0 * tokens**-1.0
        shifted = ShiftedPowerLawPCC.fit(tokens, truth)
        plain = fit_family("power_law", tokens, truth)
        shifted_err = np.abs(
            np.asarray(shifted.runtime(tokens)) - truth
        ).max()
        plain_err = np.abs(np.asarray(plain.runtime(tokens)) - truth).max()
        assert shifted_err < plain_err
        assert shifted.c == pytest.approx(50.0, rel=0.2)

    def test_constraints(self):
        with pytest.raises(FittingError):
            ShiftedPowerLawPCC(a=0.5, b=1.0, c=0.0)
        with pytest.raises(FittingError):
            ShiftedPowerLawPCC(a=-1.0, b=0.0, c=0.0)
        with pytest.raises(FittingError):
            ShiftedPowerLawPCC(a=-1.0, b=1.0, c=-1.0)

    def test_fit_is_non_increasing(self, peaky_skyline):
        from repro.arepas import default_token_grid, sweep_token_grid

        grid = default_token_grid(peaky_skyline.peak, num_points=8)
        observations = sweep_token_grid(peaky_skyline, grid)
        tokens = np.array([o.tokens for o in observations])
        runtimes = np.array([o.runtime for o in observations])
        fitted = ShiftedPowerLawPCC.fit(tokens, runtimes)
        assert fitted.is_non_increasing
        evaluated = np.asarray(fitted.runtime(np.sort(tokens)))
        assert np.all(np.diff(evaluated) <= 1e-9)


class TestFitFamily:
    def test_dispatch(self):
        tokens = np.array([2.0, 5.0, 20.0, 80.0])
        runtimes = 1000.0 * tokens**-0.7
        for family, expected in [
            ("power_law", PowerLawPCC),
            ("amdahl", AmdahlPCC),
            ("shifted", ShiftedPowerLawPCC),
        ]:
            fitted = fit_family(family, tokens, runtimes)
            assert isinstance(fitted, expected)
            assert isinstance(fitted, PCCFamily)

    def test_unknown_family(self):
        with pytest.raises(FittingError):
            fit_family("sigmoid", np.array([1.0, 2.0]), np.array([2.0, 1.0]))


class TestSkylineReplay:
    @pytest.fixture(scope="class")
    def replay(self, repository):
        return SkylineReplay().fit(repository.records())

    def test_covers_seen_signatures(self, replay, repository):
        plans = [r.plan for r in repository.records()]
        assert replay.coverage(plans) == 1.0

    def test_prediction_matches_arepas_on_identical_instance(
        self, replay, repository
    ):
        from repro.arepas import AREPAS

        record = repository.records()[0]
        tokens = max(1.0, record.peak_tokens * 0.5)
        predicted = replay.predict_runtime(record.plan, tokens)
        # The stored skyline for this signature may come from a *newer*
        # sibling instance, so only same-signature consistency is exact
        # when the job is the signature's latest instance.
        assert predicted is not None
        assert predicted > 0
        del AREPAS  # imported for documentation parity

    def test_at_or_above_peak_returns_duration(self, replay, repository):
        record = repository.records()[0]
        predicted = replay.predict_runtime(record.plan, 10_000.0)
        assert predicted is not None
        assert predicted > 0

    def test_uncovered_plan_returns_none(self, replay):
        from repro.scope import WorkloadConfig, WorkloadGenerator

        foreign = WorkloadGenerator(
            WorkloadConfig(recurring_fraction=0.0), seed=999
        ).generate(1)[0]
        assert replay.predict_runtime(foreign.plan, 10.0) is None

    def test_keeps_most_recent_skyline(self):
        """Two instances of one signature: the later day wins."""
        from repro.scope import WorkloadConfig, WorkloadGenerator, run_workload

        generator = WorkloadGenerator(
            WorkloadConfig(recurring_fraction=1.0, num_templates=1), seed=3
        )
        day0 = run_workload(generator.generate(1, start_day=0), seed=0)
        day1 = run_workload(generator.generate(1, start_day=1), seed=1)
        records = day0.records() + day1.records()
        replay = SkylineReplay().fit(records)
        newest = day1.records()[0]
        predicted = replay.predict_runtime(newest.plan, 1e9)
        assert predicted == pytest.approx(float(newest.runtime))

    def test_not_fitted(self, repository):
        with pytest.raises(NotFittedError):
            SkylineReplay().predict_runtime(
                repository.records()[0].plan, 10.0
            )

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            SkylineReplay().fit([])
