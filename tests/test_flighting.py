"""Unit tests for the flighting harness and flighted dataset."""

import numpy as np
import pytest

from repro.exceptions import FlightingError
from repro.flighting import (
    FlightHarness,
    build_flighted_dataset,
    evaluate_on_flighted,
    workload_savings,
)
from repro.models import NNPCCModel, TrainConfig


class TestFlightHarness:
    def test_flights_cover_levels_and_replicas(self, repository):
        record = repository.records()[0]
        harness = FlightHarness(seed=1, replicas=2,
                                token_fractions=(1.0, 0.5))
        flights = harness.flight_job(record)
        assert len(flights) == 4
        levels = {f.tokens for f in flights}
        assert levels == {
            record.requested_tokens,
            max(1, round(0.5 * record.requested_tokens)),
        }

    def test_replicas_differ(self, repository):
        record = repository.records()[0]
        harness = FlightHarness(seed=1, replicas=2, anomaly_rate=0.0)
        flights = harness.flight_job(record)
        by_level = {}
        for f in flights:
            by_level.setdefault(f.tokens, []).append(f)
        for group in by_level.values():
            assert group[0].skyline != group[1].skyline

    def test_deterministic_per_seed(self, repository):
        record = repository.records()[0]
        a = FlightHarness(seed=9).flight_job(record)
        b = FlightHarness(seed=9).flight_job(record)
        assert all(x.skyline == y.skyline for x, y in zip(a, b))

    def test_invalid_config(self):
        with pytest.raises(FlightingError):
            FlightHarness(replicas=0)
        with pytest.raises(FlightingError):
            FlightHarness(anomaly_rate=0.9)
        with pytest.raises(FlightingError):
            FlightHarness(token_fractions=(1.5,))

    def test_empty_workload_raises(self):
        with pytest.raises(FlightingError):
            FlightHarness().flight_workload([])


class TestFlightedDataset:
    def test_jobs_survive_filters(self, flighted):
        assert len(flighted) > 0
        assert flighted.num_flights > 0

    def test_job_views(self, flighted):
        job = flighted.jobs[0]
        by_tokens = job.runtime_by_tokens()
        assert set(by_tokens) == set(job.token_levels)
        assert job.reference_tokens == max(job.token_levels)
        assert job.reference_runtime() == by_tokens[job.reference_tokens]
        assert job.reference_skyline().duration > 0

    def test_ground_truth_pcc_decreasing(self, flighted):
        for job in flighted.jobs:
            pcc = job.ground_truth_pcc()
            # Filters enforce monotone-with-tolerance runtimes, so the
            # fitted exponent is non-positive up to noise.
            assert pcc.a <= 0.15

    def test_arepas_inputs_shape(self, flighted):
        inputs = flighted.arepas_inputs()
        assert len(inputs) == len(flighted)
        for job_id, reference, tokens, targets in inputs:
            assert tokens > 0
            assert all(t < tokens for t, _ in targets)

    def test_fully_matched_subset(self, flighted):
        subset = flighted.fully_matched(tolerance=30.0)
        assert len(subset) <= len(flighted)
        tight = flighted.fully_matched(tolerance=5.0)
        assert len(tight) <= len(subset)

    def test_to_pcc_dataset(self, flighted):
        dataset = flighted.to_pcc_dataset()
        assert len(dataset) == len(flighted)
        assert np.all(dataset.observed_runtimes() > 0)

    def test_evaluation_pairs_aligned(self, flighted):
        idx, tokens, runtimes = flighted.evaluation_pairs()
        assert idx.shape == tokens.shape == runtimes.shape
        assert idx.max() == len(flighted) - 1
        expected = sum(len(j.token_levels) for j in flighted.jobs)
        assert idx.size == expected

    def test_empty_records_raise(self):
        with pytest.raises(FlightingError):
            build_flighted_dataset([])


class TestFlightedEvaluation:
    @pytest.fixture(scope="class")
    def nn(self, dataset):
        return NNPCCModel(train_config=TrainConfig(epochs=20), seed=1).fit(dataset)

    def test_table8_row(self, nn, flighted):
        evaluation = evaluate_on_flighted(nn, flighted)
        assert evaluation.pattern_non_increasing == 1.0
        assert evaluation.curve_param_mae is not None
        assert evaluation.runtime_median_ape > 0

    def test_workload_savings_structure(self, flighted, nn):
        w1, w2 = workload_savings(flighted, nn)
        assert w1.name == "W1" and w2.name == "W2"
        # Using fewer-than-largest tokens must save tokens and cost time.
        assert 0 < w1.token_savings < 1
        assert 0 <= w2.token_savings < 1
        assert w1.slowdown >= -0.05  # noise can make it mildly negative
        assert w1.predicted_slowdown is not None

    def test_workload_savings_without_model(self, flighted):
        w1, w2 = workload_savings(flighted)
        assert w1.predicted_slowdown is None

    def test_w1_w2_relationship(self, flighted):
        """W1 includes the deep 20% cuts, so it saves more and slows more."""
        w1, w2 = workload_savings(flighted)
        assert w1.token_savings >= w2.token_savings - 0.05
