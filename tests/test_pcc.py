"""Unit tests for PCC representation, fitting, and decisions."""

import numpy as np
import pytest

from repro.arepas import default_token_grid
from repro.exceptions import FittingError
from repro.pcc import (
    PowerLawPCC,
    find_elbow,
    fit_from_skyline,
    fit_observations,
    fit_power_law,
    fit_quality,
    optimal_tokens,
    tokens_for_slowdown,
)
from repro.arepas.augmentation import AugmentedObservation
from repro.skyline import Skyline


class TestPowerLawPCC:
    def test_runtime_evaluation(self):
        pcc = PowerLawPCC(a=-1.0, b=1000.0)
        assert pcc.runtime(10) == pytest.approx(100.0)
        assert pcc.runtime(100) == pytest.approx(10.0)

    def test_amdahl_special_case(self):
        pcc = PowerLawPCC.amdahl(3600)
        assert pcc.a == -1.0
        assert pcc.runtime(60) == pytest.approx(60.0)

    def test_vectorized_runtime(self):
        pcc = PowerLawPCC(a=-0.5, b=100.0)
        values = pcc.runtime(np.array([1.0, 4.0, 16.0]))
        assert np.allclose(values, [100.0, 50.0, 25.0])

    def test_monotonicity_flag(self):
        assert PowerLawPCC(a=-0.5, b=10).is_non_increasing
        assert PowerLawPCC(a=0.0, b=10).is_non_increasing
        assert not PowerLawPCC(a=0.5, b=10).is_non_increasing

    def test_rejects_nonpositive_b(self):
        with pytest.raises(FittingError):
            PowerLawPCC(a=-1.0, b=0.0)

    def test_rejects_non_finite(self):
        with pytest.raises(FittingError):
            PowerLawPCC(a=np.nan, b=1.0)

    def test_rejects_nonpositive_tokens(self):
        with pytest.raises(FittingError):
            PowerLawPCC(a=-1, b=10).runtime(0)

    def test_log_parameter_roundtrip(self):
        pcc = PowerLawPCC(a=-0.7, b=250.0)
        a, log_b = pcc.log_parameters()
        restored = PowerLawPCC.from_log_parameters(a, log_b)
        assert restored.a == pytest.approx(pcc.a)
        assert restored.b == pytest.approx(pcc.b)

    def test_relative_improvement(self):
        pcc = PowerLawPCC(a=-0.5, b=100.0)
        assert pcc.relative_improvement(50) == pytest.approx(0.01)

    def test_slope_negative_for_decreasing(self):
        assert PowerLawPCC(a=-1, b=10).slope(5) < 0

    def test_speedup(self):
        pcc = PowerLawPCC(a=-1.0, b=100.0)
        assert pcc.speedup(10, 20) == pytest.approx(2.0)


class TestFitting:
    def test_exact_recovery(self):
        true = PowerLawPCC(a=-0.8, b=500.0)
        tokens = np.array([5.0, 10.0, 20.0, 40.0])
        fitted = fit_power_law(tokens, true.runtime(tokens))
        assert fitted.a == pytest.approx(-0.8)
        assert fitted.b == pytest.approx(500.0, rel=1e-9)

    def test_weighted_fit_prefers_heavy_points(self):
        tokens = np.array([10.0, 20.0, 40.0])
        runtimes = np.array([100.0, 100.0, 10.0])  # kink at the end
        flat_fit = fit_power_law(tokens, runtimes,
                                 weights=np.array([100.0, 100.0, 0.01]))
        assert abs(flat_fit.a) < 0.2  # dominated by the flat points

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(FittingError):
            fit_power_law(np.array([1.0, 2.0]), np.array([1.0]))

    def test_rejects_single_point(self):
        with pytest.raises(FittingError):
            fit_power_law(np.array([1.0]), np.array([1.0]))

    def test_rejects_nonpositive_values(self):
        with pytest.raises(FittingError):
            fit_power_law(np.array([1.0, 2.0]), np.array([0.0, 1.0]))

    def test_rejects_duplicate_tokens(self):
        with pytest.raises(FittingError):
            fit_power_law(np.array([2.0, 2.0]), np.array([1.0, 2.0]))

    def test_fit_observations_upweights_observed(self):
        observations = [
            AugmentedObservation(tokens=10, runtime=100, source="observed"),
            AugmentedObservation(tokens=20, runtime=80),
            AugmentedObservation(tokens=40, runtime=70),
        ]
        default = fit_observations(observations)
        heavy = fit_observations(observations, observed_weight=50.0)
        # Up-weighting drags the curve closer to the observed point.
        assert abs(heavy.runtime(10) - 100) <= abs(default.runtime(10) - 100)

    def test_fit_from_skyline_monotone(self, peaky_skyline):
        pcc = fit_from_skyline(peaky_skyline, reference_tokens=80)
        assert pcc.is_non_increasing
        assert pcc.b > 0

    def test_fit_quality_perfect(self):
        pcc = PowerLawPCC(a=-1.0, b=100.0)
        tokens = np.array([1.0, 2.0, 4.0])
        quality = fit_quality(pcc, tokens, pcc.runtime(tokens))
        assert quality["r_squared"] == pytest.approx(1.0)
        assert quality["median_ape"] == pytest.approx(0.0)


class TestOptimalTokens:
    def test_closed_form(self):
        pcc = PowerLawPCC(a=-0.5, b=100.0)
        # -a / threshold = 0.5 / 0.01 = 50
        assert optimal_tokens(pcc, improvement_threshold=0.01) == 50

    def test_respects_bounds(self):
        pcc = PowerLawPCC(a=-0.5, b=100.0)
        assert optimal_tokens(pcc, 0.01, max_tokens=30) == 30
        assert optimal_tokens(pcc, 10.0, min_tokens=5) == 5

    def test_flat_curve_gets_minimum(self):
        pcc = PowerLawPCC(a=0.0, b=100.0)
        assert optimal_tokens(pcc) == 1

    def test_rejects_increasing_curve(self):
        with pytest.raises(FittingError):
            optimal_tokens(PowerLawPCC(a=0.5, b=10))

    def test_rejects_bad_threshold(self):
        with pytest.raises(FittingError):
            optimal_tokens(PowerLawPCC(a=-1, b=10), improvement_threshold=0)


class TestTokensForSlowdown:
    def test_zero_budget_keeps_reference(self):
        pcc = PowerLawPCC(a=-1.0, b=100.0)
        assert tokens_for_slowdown(pcc, reference_tokens=100, max_slowdown=0.0) == 100

    def test_budget_allows_reduction(self):
        pcc = PowerLawPCC(a=-1.0, b=100.0)
        # runtime scales as 1/A: 10% slowdown allows ~9% fewer tokens.
        tokens = tokens_for_slowdown(pcc, 100, 0.10)
        assert tokens == 91
        assert pcc.runtime(tokens) <= 1.10 * pcc.runtime(100) * 1.001

    def test_flat_curve_allows_one_token(self):
        pcc = PowerLawPCC(a=0.0, b=100.0)
        assert tokens_for_slowdown(pcc, 100, 0.05) == 1

    def test_shallow_curve_allows_bigger_cut(self):
        shallow = PowerLawPCC(a=-0.2, b=100.0)
        steep = PowerLawPCC(a=-1.0, b=100.0)
        assert tokens_for_slowdown(shallow, 100, 0.10) < tokens_for_slowdown(
            steep, 100, 0.10
        )

    def test_rejects_negative_budget(self):
        with pytest.raises(FittingError):
            tokens_for_slowdown(PowerLawPCC(a=-1, b=10), 10, -0.1)


class TestElbow:
    def test_elbow_of_power_law(self):
        tokens = np.linspace(5, 200, 60)
        runtimes = 2000 * tokens**-0.9
        elbow_tokens, elbow_runtime = find_elbow(tokens, runtimes)
        # The knee of a decaying curve sits in the lower-left region.
        assert tokens[0] < elbow_tokens < np.median(tokens)
        assert elbow_runtime == pytest.approx(2000 * elbow_tokens**-0.9)

    def test_input_order_irrelevant(self):
        tokens = np.array([100.0, 10.0, 50.0, 25.0, 200.0])
        runtimes = 1000 * tokens**-1.0
        a = find_elbow(tokens, runtimes)
        b = find_elbow(tokens[::-1], runtimes[::-1])
        assert a == b

    def test_rejects_too_few_points(self):
        with pytest.raises(FittingError):
            find_elbow(np.array([1.0, 2.0]), np.array([2.0, 1.0]))

    def test_rejects_degenerate(self):
        with pytest.raises(FittingError):
            find_elbow(np.array([1.0, 1.0, 1.0]), np.array([3.0, 2.0, 1.0]))
