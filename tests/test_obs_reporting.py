"""Tests for observability reporting: reports, exports, CLI integration."""

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import SamplingProfiler, SpanProfiler
from repro.obs.reporting import (
    folded_span_stacks,
    render_report,
    span_table_rows,
    write_chrome_trace,
)
from repro.obs.tracing import Tracer


def _busy_tracer() -> Tracer:
    tracer = Tracer(enabled=True)
    with tracer.span("outer", job="j1"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner"):
            pass
    tracer.record_span("scope.stage", 0.0, 12.0, virtual=True, stage=1)
    return tracer


class TestRenderReport:
    def test_names_all_span_sites(self):
        tracer = _busy_tracer()
        report = render_report(tracer)
        for name in ("outer", "inner", "scope.stage"):
            assert name in report
        assert "3 instrumented sites" in report
        assert "[sim]" in report  # virtual spans are flagged

    def test_includes_metric_sections(self):
        registry = MetricsRegistry()
        registry.counter("jobs").increment(4)
        registry.histogram("lat_s").record(0.002)
        registry.histogram("batch_size").record(3.0)
        registry.register_gauge("depth", lambda: 9)
        report = render_report(_busy_tracer(), registry)
        assert "== counters ==" in report and "jobs" in report
        assert "== gauges ==" in report and "depth" in report
        assert "== histograms ==" in report and "lat_s" in report
        # Non-seconds histograms render as plain numbers, not µs/ms.
        batch_line = next(
            line for line in report.splitlines()
            if line.startswith("batch_size")
        )
        assert "ms" not in batch_line and "µs" not in batch_line

    def test_empty_tracer_message(self):
        report = render_report(Tracer())
        assert "no spans recorded" in report

    def test_profile_text_appended(self):
        report = render_report(_busy_tracer(), profile_text="ncalls tottime")
        assert "== profile ==" in report
        assert "ncalls tottime" in report

    def test_top_limits_rows(self):
        tracer = Tracer(enabled=True)
        for i in range(30):
            with tracer.span(f"site_{i}"):
                pass
        rows = span_table_rows(tracer, top=5)
        assert len(rows) == 5


class TestChromeTraceFile:
    def test_written_file_is_loadable(self, tmp_path):
        path = write_chrome_trace(_busy_tracer(), tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 4


class TestFoldedStacks:
    def test_paths_and_weights(self):
        tracer = Tracer(enabled=True)
        outer = tracer.record_span("outer", 0.0, 1.0)
        tracer.record_span("inner", 0.2, 0.5, parent_id=outer.span_id)
        tracer.record_span("scope.stage", 0.0, 12.0, virtual=True)
        lines = folded_span_stacks(tracer)
        assert lines, "expected folded output"
        for line in lines:
            path, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
            assert path
        folded = dict(line.rsplit(" ", 1) for line in lines)
        # outer's self time excludes inner's 0.3 s.
        assert folded["outer"] == str(int(0.7 * 1e6))
        assert folded["outer;inner"] == str(int(0.3 * 1e6))
        assert "simulated-time;scope.stage" in folded


class TestProfilers:
    def test_span_profiler_cpu(self):
        tracer = Tracer(enabled=True)
        profiler = SpanProfiler(cpu=True, top=5)
        with tracer.span("hot") as span, profiler.attach(span):
            sum(i * i for i in range(20000))
        assert profiler.cpu_report
        (span,) = tracer.spans()
        assert "profile_cpu" in span.attrs

    def test_span_profiler_memory(self):
        profiler = SpanProfiler(cpu=False, memory=True, top=3)
        with profiler.attach(None):
            _ = [bytearray(1024) for _ in range(200)]
        assert profiler.memory_report is not None

    def test_sampling_profiler_folds_stacks(self):
        sampler = SamplingProfiler(interval_s=0.001)

        def spin():
            total = 0
            for i in range(3_000_000):
                total += i
            return total

        sampler.run(spin)
        assert sampler.samples > 0
        folded = sampler.folded()
        assert folded
        stack, count = folded[0].rsplit(" ", 1)
        assert int(count) >= 1 and ";" in stack or "(" in stack


class TestTraceCLI:
    def test_trace_subcommand_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        trace_out = tmp_path / "trace.json"
        report_out = tmp_path / "report.txt"
        folded_out = tmp_path / "folded.txt"
        code = main(
            [
                "trace",
                "--trace-out", str(trace_out),
                "--report-out", str(report_out),
                "--folded-out", str(folded_out),
                "generate",
                "--jobs", "5",
                "--out", str(tmp_path / "history.npz"),
            ]
        )
        assert code == 0
        payload = json.loads(trace_out.read_text())
        names = {
            e["name"] for e in payload["traceEvents"] if e["ph"] == "X"
        }
        assert "scope.generate_workload" in names
        assert "scope.execute_job" in names
        assert "scope.stage" in names
        report = report_out.read_text()
        assert "scope.execute_job" in report
        assert "scope_events_processed" in report
        assert folded_out.read_text().strip()
        # Tracing must be switched back off after the run.
        from repro.obs import trace as global_trace

        assert not global_trace.enabled
        global_trace.reset()

    def test_trace_requires_subcommand(self, capsys):
        from repro.cli import main

        assert main(["trace"]) == 2
        assert main(["trace", "trace", "loadtest"]) == 2
