"""Unit tests for the workload generator."""

import numpy as np
import pytest

from repro.exceptions import PlanError
from repro.scope import WorkloadConfig, WorkloadGenerator


class TestConfig:
    def test_defaults_valid(self):
        WorkloadConfig()

    def test_rejects_bad_recurring_fraction(self):
        with pytest.raises(PlanError):
            WorkloadConfig(recurring_fraction=1.5)

    def test_rejects_zero_templates(self):
        with pytest.raises(PlanError):
            WorkloadConfig(num_templates=0)

    def test_rejects_misaligned_token_weights(self):
        with pytest.raises(PlanError):
            WorkloadConfig(
                default_token_choices=(10, 20),
                default_token_weights=(1.0,),
            )


class TestGeneration:
    def test_deterministic_given_seed(self):
        a = WorkloadGenerator(seed=9).generate(10)
        b = WorkloadGenerator(seed=9).generate(10)
        assert [j.job_id for j in a] == [j.job_id for j in b]
        assert [j.plan.num_operators for j in a] == [
            j.plan.num_operators for j in b
        ]

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(seed=1).generate(20)
        b = WorkloadGenerator(seed=2).generate(20)
        assert [j.plan.num_operators for j in a] != [
            j.plan.num_operators for j in b
        ]

    def test_unique_job_ids(self, workload_jobs):
        ids = [j.job_id for j in workload_jobs]
        assert len(set(ids)) == len(ids)

    def test_rejects_zero_jobs(self):
        with pytest.raises(PlanError):
            WorkloadGenerator().generate(0)

    def test_recurring_fraction_respected(self):
        jobs = WorkloadGenerator(
            WorkloadConfig(recurring_fraction=0.5), seed=3
        ).generate(400)
        fraction = np.mean([j.recurring for j in jobs])
        assert 0.4 < fraction < 0.6

    def test_all_adhoc_when_fraction_zero(self):
        jobs = WorkloadGenerator(
            WorkloadConfig(recurring_fraction=0.0), seed=3
        ).generate(30)
        assert not any(j.recurring for j in jobs)
        templates = {j.plan.template_id for j in jobs}
        assert len(templates) == 30  # every ad-hoc job has its own template

    def test_recurring_jobs_share_templates(self):
        jobs = WorkloadGenerator(
            WorkloadConfig(recurring_fraction=1.0, num_templates=5), seed=3
        ).generate(50)
        templates = {j.plan.template_id for j in jobs}
        assert len(templates) <= 5

    def test_recurring_instances_share_structure(self):
        jobs = WorkloadGenerator(
            WorkloadConfig(recurring_fraction=1.0, num_templates=1), seed=3
        ).generate(5)
        shapes = {
            tuple(sorted(j.plan.operator_counts().items())) for j in jobs
        }
        assert len(shapes) == 1  # same operators, only input sizes drift

    def test_recurring_instances_vary_input_size(self):
        jobs = WorkloadGenerator(
            WorkloadConfig(recurring_fraction=1.0, num_templates=1), seed=3
        ).generate(6)
        cardinalities = {j.plan.total_input_cardinality for j in jobs}
        assert len(cardinalities) > 1

    def test_requested_tokens_from_choices(self, workload_jobs):
        choices = set(WorkloadConfig().default_token_choices)
        assert all(j.requested_tokens in choices for j in workload_jobs)

    def test_submit_days_spread(self):
        jobs = WorkloadGenerator(seed=5).generate(2000)
        days = {j.submit_day for j in jobs}
        assert len(days) == 2

    def test_right_skewed_sizes(self):
        """Plan total costs span orders of magnitude (heavy tail)."""
        jobs = WorkloadGenerator(seed=5).generate(200)
        costs = np.array([j.plan.total_cost for j in jobs])
        assert costs.max() / np.median(costs) > 10
