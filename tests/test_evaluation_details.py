"""Targeted tests for the Section 5 evaluation machinery using stub models."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.models import evaluate_model, evaluation_table
from repro.models.base import PCCPredictor
from repro.models.dataset import PCCDataset


class _StubParametricModel(PCCPredictor):
    """Returns fixed parameters; lets us test the metrics in isolation."""

    name = "Stub"

    def __init__(self, parameters: np.ndarray) -> None:
        super().__init__()
        self._parameters = parameters
        self._fitted = True

    def fit(self, dataset):
        return self

    def predict_parameters(self, dataset):
        return self._parameters

    def predict_runtime_at(self, dataset, tokens):
        tokens = np.asarray(tokens, dtype=float)
        return np.exp(
            self._parameters[:, 1] + self._parameters[:, 0] * np.log(tokens)
        )

    def predict_curves(self, dataset, grids):
        return [
            np.exp(log_b + a * np.log(np.asarray(grid, dtype=float)))
            for (a, log_b), grid in zip(self._parameters, grids)
        ]


@pytest.fixture(scope="module")
def small_dataset(dataset):
    return PCCDataset(examples=dataset.examples[:10])


class TestEvaluateModel:
    def test_perfect_model_scores_zero(self, small_dataset):
        """Feeding the targets back gives 0 MAE and 100% pattern."""
        targets = small_dataset.target_matrix()
        stub = _StubParametricModel(targets)
        evaluation = evaluate_model(stub, small_dataset)
        assert evaluation.curve_param_mae == pytest.approx(0.0)
        assert evaluation.pattern_non_increasing == 1.0

    def test_runtime_metric_uses_reference_tokens(self, small_dataset):
        targets = small_dataset.target_matrix()
        stub = _StubParametricModel(targets)
        evaluation = evaluate_model(stub, small_dataset)
        # The target PCC was fitted through the observed point with high
        # weight, so its runtime at the reference is close to observed.
        assert evaluation.runtime_median_ape < 50.0

    def test_pattern_counts_increasing_curves(self, small_dataset):
        targets = small_dataset.target_matrix().copy()
        targets[0, 0] = +0.5  # one increasing curve
        stub = _StubParametricModel(targets)
        evaluation = evaluate_model(stub, small_dataset)
        assert evaluation.pattern_non_increasing == pytest.approx(
            (len(small_dataset) - 1) / len(small_dataset)
        )

    def test_scaled_mae_interpretation(self, small_dataset):
        """Perturbing each parameter by its mean magnitude gives MAE 1."""
        targets = small_dataset.target_matrix()
        scale = np.abs(targets).mean(axis=0)
        stub = _StubParametricModel(targets + scale)
        evaluation = evaluate_model(stub, small_dataset)
        assert evaluation.curve_param_mae == pytest.approx(1.0)

    def test_custom_truth_changes_runtime_metric_only(self, small_dataset):
        targets = small_dataset.target_matrix()
        stub = _StubParametricModel(targets)
        base = evaluate_model(stub, small_dataset)
        doubled = evaluate_model(
            stub,
            small_dataset,
            true_runtimes=small_dataset.observed_runtimes() * 2.0,
        )
        assert doubled.curve_param_mae == base.curve_param_mae
        assert doubled.runtime_median_ape != base.runtime_median_ape

    def test_empty_dataset_rejected(self, small_dataset):
        stub = _StubParametricModel(small_dataset.target_matrix())
        with pytest.raises(ModelError):
            evaluate_model(stub, PCCDataset())


class TestEvaluationTable:
    def test_renders_na_for_nonparametric(self, small_dataset):
        from repro.models.evaluation import ModelEvaluation

        rows = [
            ModelEvaluation(
                model="NP", pattern_non_increasing=0.4,
                curve_param_mae=None, runtime_median_ape=13.0,
            ),
            ModelEvaluation(
                model="P", pattern_non_increasing=1.0,
                curve_param_mae=0.08, runtime_median_ape=22.0,
            ),
        ]
        table = evaluation_table(rows)
        assert "NA" in table
        assert "0.080" in table
        assert "40%" in table and "100%" in table
