"""Unit tests for the Spark executor adaptation (Section 2.3)."""

import numpy as np
import pytest

from repro.adapters import (
    ExecutorConfig,
    SparkScoringAdapter,
    to_executor_repository,
)
from repro.exceptions import PipelineError
from repro.models import NNPCCModel, TrainConfig, build_dataset
from repro.tasq import ScoringPipeline


class TestExecutorConfig:
    def test_covering_count(self):
        config = ExecutorConfig(tokens_per_executor=4)
        assert config.executors_for_tokens(1) == 1
        assert config.executors_for_tokens(4) == 1
        assert config.executors_for_tokens(5) == 2
        assert config.executors_for_tokens(100) == 25

    def test_validation(self):
        with pytest.raises(PipelineError):
            ExecutorConfig(tokens_per_executor=0)
        with pytest.raises(PipelineError):
            ExecutorConfig(allowed_executor_counts=())
        with pytest.raises(PipelineError):
            ExecutorConfig(allowed_executor_counts=(4, 2))
        with pytest.raises(PipelineError):
            ExecutorConfig(allowed_executor_counts=(2, 2, 4))


class TestRepositoryConversion:
    def test_units_converted(self, repository):
        config = ExecutorConfig(tokens_per_executor=4)
        converted = to_executor_repository(repository, config)
        assert len(converted) == len(repository)
        for original in repository:
            executor_record = converted.get(original.job_id)
            assert executor_record.requested_tokens == max(
                1, int(np.ceil(original.requested_tokens / 4))
            )
            # Area scales by exactly the bundling factor.
            assert executor_record.skyline.area == pytest.approx(
                original.skyline.area / 4
            )
            # Run time (duration) is unchanged — units, not speed.
            assert executor_record.runtime == original.runtime

    def test_converted_repository_trains(self, repository):
        converted = to_executor_repository(repository)
        dataset = build_dataset(converted)
        model = NNPCCModel(train_config=TrainConfig(epochs=5), seed=0)
        model.fit(dataset)
        params = model.predict_parameters(dataset)
        assert np.all(params[:, 0] <= 0)


class TestSparkScoringAdapter:
    @pytest.fixture(scope="class")
    def adapter(self, repository):
        converted = to_executor_repository(repository)
        dataset = build_dataset(converted)
        model = NNPCCModel(train_config=TrainConfig(epochs=25), seed=0)
        model.fit(dataset)
        scorer = ScoringPipeline(
            model, improvement_threshold=10.0, max_slowdown=0.10
        )
        return SparkScoringAdapter(scorer=scorer)

    def test_recommendation_on_menu(self, adapter, repository):
        config = adapter.config
        for record in repository.records()[:10]:
            requested = config.executors_for_tokens(record.requested_tokens)
            rec = adapter.recommend(record.plan, requested)
            on_menu = rec.recommended_executors in config.allowed_executor_counts
            assert on_menu or rec.recommended_executors == requested
            assert 1 <= rec.recommended_executors <= requested
            assert rec.executor_hours > 0
            assert rec.pcc.is_non_increasing

    def test_snapping_rounds_up(self, adapter):
        # Optimal 5 with menu (2,4,8,...): must snap to 8, not 4.
        assert adapter._snap(5, requested=64) == 8
        assert adapter._snap(2, requested=64) == 2
        assert adapter._snap(100, requested=64) == 64  # capped at request

    def test_tiny_request_granted_verbatim(self, adapter, repository):
        record = repository.records()[0]
        rec = adapter.recommend(record.plan, 1)
        assert rec.recommended_executors == 1

    def test_rejects_bad_request(self, adapter, repository):
        with pytest.raises(PipelineError):
            adapter.recommend(repository.records()[0].plan, 0)
