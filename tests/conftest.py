"""Shared fixtures: a small generated workload reused across test modules.

Workload generation + execution is deterministic but not free, so the
expensive artifacts (repository, featurized dataset, flighted dataset)
are session-scoped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flighting import FlightHarness, build_flighted_dataset
from repro.models import build_dataset
from repro.scope import WorkloadGenerator, run_workload
from repro.skyline import Skyline


@pytest.fixture(scope="session")
def workload_jobs():
    return WorkloadGenerator(seed=123).generate(80)


@pytest.fixture(scope="session")
def repository(workload_jobs):
    return run_workload(workload_jobs, seed=7)


@pytest.fixture(scope="session")
def dataset(repository):
    return build_dataset(repository)


@pytest.fixture(scope="session")
def flighted(repository):
    records = repository.records()[:20]
    harness = FlightHarness(seed=5, anomaly_rate=0.05)
    return build_flighted_dataset(records, harness)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture()
def peaky_skyline():
    """A peaky skyline: short bursts over a low floor (Figure 5a)."""
    usage = np.full(200, 10.0)
    usage[20:35] = 90.0
    usage[90:100] = 80.0
    usage[150:160] = 95.0
    return Skyline(usage)


@pytest.fixture()
def flat_skyline():
    """A flat skyline: sustained moderate-high utilization (Figure 5b)."""
    usage = np.full(250, 60.0)
    usage[:10] = 20.0
    usage[-15:] = 15.0
    return Skyline(usage)
