"""Unit tests for featurization (Tables 1-2)."""

import numpy as np
import pytest

from repro.exceptions import FeaturizationError
from repro.features import (
    JOB_EXTRA_FEATURES,
    OPERATOR_SCHEMA,
    GraphSample,
    job_feature_matrix,
    job_feature_names,
    job_vector,
    normalized_adjacency,
    operator_vector,
    plan_feature_matrix,
    plan_to_graph_sample,
)
from repro.scope import OperatorNode, PartitioningMethod, QueryPlan


@pytest.fixture()
def small_plan():
    nodes = {
        0: OperatorNode(
            op_id=0, kind="Extract", output_cardinality=1000,
            leaf_input_cardinality=1000, average_row_length=80,
            cost_subtree=10, cost_exclusive=10, cost_total=12,
            num_partitions=4,
        ),
        1: OperatorNode(
            op_id=1, kind="Sort", children=(0,), output_cardinality=1000,
            leaf_input_cardinality=1000, children_input_cardinality=1000,
            average_row_length=80, cost_subtree=15, cost_exclusive=5,
            cost_total=6, num_partitions=4, num_sort_columns=2,
            partitioning=PartitioningMethod.RANGE,
        ),
        2: OperatorNode(
            op_id=2, kind="Output", children=(1,), output_cardinality=1000,
            cost_exclusive=1, num_partitions=4,
        ),
    }
    return QueryPlan(job_id="small", nodes=nodes)


class TestSchema:
    def test_dimensions(self):
        # 7 continuous + 3 discrete + 35 operators + 4 partitioning = 49.
        assert OPERATOR_SCHEMA.operator_dim == 49
        assert OPERATOR_SCHEMA.job_dim == 51
        assert JOB_EXTRA_FEATURES == ("num_operators", "num_stages")

    def test_slices_partition_the_vector(self):
        schema = OPERATOR_SCHEMA
        slices = [
            schema.continuous_slice(),
            schema.discrete_slice(),
            schema.operator_kind_slice(),
            schema.partitioning_slice(),
        ]
        covered = []
        for s in slices:
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(schema.operator_dim))

    def test_column_names(self):
        names = OPERATOR_SCHEMA.column_names()
        assert len(names) == OPERATOR_SCHEMA.operator_dim
        assert names[0] == "output_cardinality"
        assert "op:HashJoin" in names
        assert "part:hash" in names

    def test_job_feature_names(self):
        names = job_feature_names()
        assert len(names) == OPERATOR_SCHEMA.job_dim
        assert names[-2:] == ["num_operators", "num_stages"]


class TestOperatorVector:
    def test_one_hot_positions(self, small_plan):
        vector = operator_vector(small_plan.nodes[1])
        kinds = vector[OPERATOR_SCHEMA.operator_kind_slice()]
        assert kinds.sum() == 1.0
        kind_index = OPERATOR_SCHEMA.operator_kinds.index("Sort")
        assert kinds[kind_index] == 1.0
        partitioning = vector[OPERATOR_SCHEMA.partitioning_slice()]
        assert partitioning.sum() == 1.0

    def test_continuous_log_transformed(self, small_plan):
        vector = operator_vector(small_plan.nodes[0])
        continuous = vector[OPERATOR_SCHEMA.continuous_slice()]
        assert continuous[0] == pytest.approx(np.log1p(1000))

    def test_discrete_passthrough(self, small_plan):
        vector = operator_vector(small_plan.nodes[1])
        discrete = vector[OPERATOR_SCHEMA.discrete_slice()]
        assert list(discrete) == [4.0, 0.0, 2.0]

    def test_plan_matrix_in_topological_order(self, small_plan):
        matrix = plan_feature_matrix(small_plan)
        assert matrix.shape == (3, 49)
        for row, op_id in zip(matrix, small_plan.topological_order):
            expected = operator_vector(small_plan.nodes[op_id])
            assert np.allclose(row, expected)


class TestJobVector:
    def test_categoricals_are_counts(self, small_plan):
        vector = job_vector(small_plan)
        kinds = vector[OPERATOR_SCHEMA.operator_kind_slice()]
        assert kinds.sum() == 3.0  # three operators, counted not averaged

    def test_numeric_are_means(self, small_plan):
        matrix = plan_feature_matrix(small_plan)
        vector = job_vector(small_plan)
        numeric = slice(0, 10)
        assert np.allclose(vector[numeric], matrix[:, numeric].mean(axis=0))

    def test_structural_extras(self, small_plan):
        vector = job_vector(small_plan)
        assert vector[OPERATOR_SCHEMA.operator_dim] == 3.0  # operators
        assert vector[OPERATOR_SCHEMA.operator_dim + 1] == small_plan.num_stages

    def test_job_matrix_stacks(self, small_plan):
        matrix = job_feature_matrix([small_plan, small_plan])
        assert matrix.shape == (2, 51)
        assert np.allclose(matrix[0], matrix[1])

    def test_fixed_width_across_different_plans(self, workload_jobs):
        matrix = job_feature_matrix([j.plan for j in workload_jobs[:10]])
        assert matrix.shape == (10, 51)
        assert np.all(np.isfinite(matrix))


class TestGraphFeatures:
    def test_normalized_adjacency_properties(self, small_plan):
        normalized = normalized_adjacency(small_plan.adjacency_matrix())
        assert normalized.shape == (3, 3)
        assert np.allclose(normalized, normalized.T)
        eigenvalues = np.linalg.eigvalsh(normalized)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_rejects_non_square(self):
        with pytest.raises(FeaturizationError):
            normalized_adjacency(np.ones((2, 3)))

    def test_graph_sample_consistency(self, small_plan):
        sample = plan_to_graph_sample(small_plan)
        assert sample.num_nodes == 3
        assert sample.node_features.shape == (3, 49)
        assert sample.adjacency.shape == (3, 3)

    def test_graph_sample_validates_shapes(self):
        with pytest.raises(FeaturizationError):
            GraphSample(
                node_features=np.ones((3, 5)), adjacency=np.ones((2, 2))
            )
