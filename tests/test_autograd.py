"""Unit tests for the reverse-mode autograd engine."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.ml import Tensor, concat, maximum, tensor, where


def numeric_gradient(func, value, eps=1e-6):
    """Central-difference gradient of scalar ``func`` at array ``value``."""
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = func(value)
        flat[i] = original - eps
        lower = func(value)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


def check_gradient(build, shape, seed=0, atol=1e-6):
    """Compare autograd and numeric gradients of ``build(Tensor)``."""
    rng = np.random.default_rng(seed)
    value = rng.normal(size=shape)
    t = Tensor(value.copy(), requires_grad=True)
    loss = build(t)
    loss.backward()
    numeric = numeric_gradient(lambda v: build(Tensor(v)).item(), value.copy())
    assert np.allclose(t.grad, numeric, atol=atol), (
        f"autograd {t.grad} vs numeric {numeric}"
    )


class TestElementwiseGradients:
    def test_add_mul(self):
        check_gradient(lambda t: ((t * 3.0 + 2.0) * t).sum(), (4,))

    def test_sub_div(self):
        check_gradient(lambda t: ((t - 1.5) / 2.0).abs().sum(), (5,))

    def test_div_by_tensor(self):
        def build(t):
            return (t / (t * t + 2.0)).sum()
        check_gradient(build, (4,))

    def test_pow(self):
        check_gradient(lambda t: ((t * t + 1.0) ** 1.5).sum(), (3,))

    def test_exp_log(self):
        check_gradient(lambda t: ((t.exp() + 1.0).log()).sum(), (4,))

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum(), (6,))

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid().sum(), (6,))

    def test_softplus(self):
        check_gradient(lambda t: t.softplus().sum(), (6,))

    def test_relu(self):
        check_gradient(lambda t: (t.relu() * t).sum(), (8,), seed=3)

    def test_abs(self):
        check_gradient(lambda t: (t.abs() * 2.0).sum(), (5,), seed=1)

    def test_softplus_extreme_values_stable(self):
        t = Tensor(np.array([-800.0, 0.0, 800.0]), requires_grad=True)
        out = t.softplus()
        assert np.all(np.isfinite(out.data))
        out.sum().backward()
        assert np.all(np.isfinite(t.grad))


class TestMatmulGradients:
    def test_matrix_matrix(self):
        other = np.random.default_rng(1).normal(size=(3, 2))
        check_gradient(lambda t: (t @ Tensor(other)).sum(), (4, 3))

    def test_matrix_matrix_right(self):
        other = np.random.default_rng(1).normal(size=(5, 4))

        def build(t):
            return (Tensor(other) @ t).tanh().sum()
        check_gradient(build, (4, 2))

    def test_batched_matmul(self):
        other = np.random.default_rng(2).normal(size=(3, 4, 2))
        check_gradient(lambda t: (t @ Tensor(other)).sum(), (3, 5, 4))

    def test_batched_matmul_broadcast_weight(self):
        """(B, N, F) @ (F, G) — the GCN pattern."""
        weight_shape = (4, 3)

        def build(t):
            weight = Tensor(np.ones(weight_shape))
            return (t @ weight).sum()
        check_gradient(build, (2, 5, 4))

    def test_vector_matrix(self):
        other = np.random.default_rng(1).normal(size=(3, 2))
        check_gradient(lambda t: (t @ Tensor(other)).sum(), (3,))


class TestReductionsAndShape:
    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2.0).sum(), (3, 4))

    def test_sum_keepdims(self):
        check_gradient(
            lambda t: (t - t.sum(axis=1, keepdims=True)).abs().sum(), (3, 4)
        )

    def test_mean(self):
        check_gradient(lambda t: (t.mean(axis=1) ** 2.0).sum(), (2, 5))

    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(6) * 2.0).sum(), (2, 3))

    def test_transpose(self):
        other = np.random.default_rng(0).normal(size=(4, 3))
        check_gradient(
            lambda t: (t.transpose() * Tensor(other)).sum(), (3, 4)
        )

    def test_getitem(self):
        check_gradient(lambda t: (t[:, 1:3] ** 2.0).sum(), (3, 4))

    def test_broadcasting_add(self):
        other = np.random.default_rng(0).normal(size=(1, 4))
        check_gradient(lambda t: (t + Tensor(other)).sum(), (3, 4))

    def test_broadcast_grad_shape(self):
        bias = Tensor(np.zeros(4), requires_grad=True)
        x = Tensor(np.ones((5, 4)))
        (x + bias).sum().backward()
        assert bias.grad.shape == (4,)
        assert np.allclose(bias.grad, 5.0)


class TestHelpers:
    def test_concat(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 2.0)

    def test_concat_empty_raises(self):
        with pytest.raises(ModelError):
            concat([])

    def test_maximum(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 2.0]), requires_grad=True)
        maximum(a, b).sum().backward()
        assert list(a.grad) == [0.0, 1.0]
        assert list(b.grad) == [1.0, 0.0]

    def test_where(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        out = where(np.array([True, False]), a, b)
        assert list(out.data) == [1.0, 4.0]
        out.sum().backward()
        assert list(a.grad) == [1.0, 0.0]
        assert list(b.grad) == [0.0, 1.0]

    def test_tensor_constructor(self):
        t = tensor([1.0, 2.0], requires_grad=True)
        assert t.requires_grad
        assert t.shape == (2,)


class TestBackwardSemantics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ModelError):
            (t * 2.0).backward()

    def test_gradient_accumulates_over_reuse(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        (t * t).sum().backward()  # d(t^2)/dt = 2t = 4
        assert t.grad[0] == pytest.approx(4.0)

    def test_zero_grad(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        (t * 3.0).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_no_grad_tracking_for_constants(self):
        a = Tensor(np.ones(3))
        out = a * 2.0
        assert not out.requires_grad

    def test_diamond_graph(self):
        """Gradient through a reused intermediate accumulates once per path."""
        t = Tensor(np.array([3.0]), requires_grad=True)
        shared = t * 2.0
        loss = (shared * shared).sum()  # (2t)^2 -> d/dt = 8t = 24
        loss.backward()
        assert t.grad[0] == pytest.approx(24.0)

    def test_deep_chain_iterative_topo(self):
        """1000-deep chains must not hit recursion limits."""
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = t
        for _ in range(1000):
            out = out + 1.0
        out.sum().backward()
        assert t.grad[0] == 1.0
