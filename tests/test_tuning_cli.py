"""Unit tests for loss-weight tuning and the command-line interface."""

import pickle

import pytest

from repro.exceptions import ModelError
from repro.models import NNPCCModel, TrainConfig, tune_runtime_weight
from repro.cli import build_parser, main


class TestWeightTuning:
    @pytest.fixture(scope="class")
    def split(self, dataset):
        from repro.models.dataset import PCCDataset

        half = len(dataset) // 2
        train = PCCDataset(examples=dataset.examples[:half])
        validation = PCCDataset(examples=dataset.examples[half:])
        return train, validation

    def test_picks_an_offered_weight(self, split):
        train, validation = split

        def factory(loss):
            return NNPCCModel(loss=loss, train_config=TrainConfig(epochs=10),
                              seed=0)

        result = tune_runtime_weight(
            factory, train, validation, weights=(0.1, 0.5, 1.0)
        )
        assert result.best_weight in (0.1, 0.5, 1.0)
        assert len(result.trials) == 3
        assert result.lf1_param_mae > 0
        best = result.best_trial()
        assert best[0] == result.best_weight

    def test_admissible_rule(self, split):
        """The winner's parameter MAE stays near LF1 unless none can."""
        train, validation = split

        def factory(loss):
            return NNPCCModel(loss=loss, train_config=TrainConfig(epochs=10),
                              seed=0)

        result = tune_runtime_weight(
            factory, train, validation, weights=(0.25, 0.5), tolerance=1.5
        )
        best = result.best_trial()
        admissible = [
            t for t in result.trials
            if t[1] <= 1.5 * result.lf1_param_mae
        ]
        if admissible:
            assert best in admissible
            assert best[2] == min(t[2] for t in admissible)

    def test_rejects_bad_inputs(self, split):
        train, validation = split
        with pytest.raises(ModelError):
            tune_runtime_weight(lambda loss: None, train, validation,
                                weights=())
        with pytest.raises(ModelError):
            tune_runtime_weight(lambda loss: None, train, validation,
                                tolerance=0.5)


class TestCLI:
    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("generate", "stats", "train", "score", "whatif",
                        "flight"):
            assert command in text

    @pytest.fixture(scope="class")
    def repo_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "hist.npz"
        code = main(
            ["generate", "--jobs", "25", "--seed", "4", "--out", str(path)]
        )
        assert code == 0
        return path

    def test_stats(self, repo_file, capsys):
        assert main(["stats", "--repo", str(repo_file)]) == 0
        out = capsys.readouterr().out
        assert "runtime_median" in out
        assert "recurring jobs" in out

    def test_train_and_score(self, repo_file, tmp_path, capsys):
        model_path = tmp_path / "model.pkl"
        code = main(
            [
                "train", "--repo", str(repo_file), "--model", "nn",
                "--epochs", "5", "--out", str(model_path),
            ]
        )
        assert code == 0
        assert model_path.exists()
        with open(model_path, "rb") as handle:
            model = pickle.load(handle)
        assert model.num_parameters() > 0

        code = main(
            [
                "score", "--model", str(model_path), "--repo",
                str(repo_file), "--limit", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optimal" in out

    def test_score_unknown_job(self, repo_file, tmp_path):
        model_path = tmp_path / "model.pkl"
        main(["train", "--repo", str(repo_file), "--model", "xgboost",
              "--out", str(model_path)])
        code = main(
            [
                "score", "--model", str(model_path), "--repo",
                str(repo_file), "--job", "nope",
            ]
        )
        assert code == 1

    def test_whatif(self, repo_file, capsys):
        code = main(
            ["whatif", "--repo", str(repo_file), "--budget", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean reduction" in out

    def test_flight(self, repo_file, capsys):
        code = main(
            ["flight", "--repo", str(repo_file), "--sample", "6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AREPAS error" in out
