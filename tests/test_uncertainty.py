"""The uncertainty layer: pinball loss, intervals, risk, drift, promotion.

Every numeric threshold asserted here (quantiles 0.1/0.5/0.9, coverage
alarm below 0.65, held-out coverage band [0.7, 0.95], promotion gate
40 / 1.1 / [0.65, 0.98]) is the one specified in ``docs/uncertainty.md``
— keep the two in sync.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    FittingError,
    ModelError,
    PipelineError,
    ServingError,
)
from repro.ml.gbm import (
    BoosterParams,
    GradientBoostingRegressor,
    PinballLoss,
)
from repro.models import NNPCCModel, TrainConfig, XGBoostPL
from repro.pcc import PowerLawPCC
from repro.pcc.intervals import (
    INTERVAL_QUANTILES,
    PCCInterval,
    pcc_at_risk,
    tokens_within_slowdown_at_risk,
)
from repro.pcc.optimal import tokens_for_slowdown
from repro.serving.shadow import PromotionGate, ShadowDecision, ShadowState
from repro.tasq.monitoring import PredictionMonitor
from repro.tasq.pipeline import ScoringPipeline
from repro.tasq.price_performance import cheapest_within_deadline

TOKEN_GRID = np.geomspace(1.0, 2048.0, 60)


def _pinball(quantile: float, y: np.ndarray, raw: np.ndarray) -> np.ndarray:
    u = np.log(y) - raw
    return np.maximum(quantile * u, (quantile - 1.0) * u)


class TestPinballLoss:
    @pytest.mark.parametrize("quantile", INTERVAL_QUANTILES)
    def test_gradient_matches_finite_differences(self, quantile):
        rng = np.random.default_rng(42)
        y = rng.lognormal(mean=2.0, sigma=1.0, size=256)
        raw = rng.normal(loc=2.0, scale=1.5, size=256)
        # The loss is non-differentiable on the kink raw == log(y);
        # compare only where the central difference straddles one side.
        eps = 1e-6
        smooth = np.abs(np.log(y) - raw) > 1e-3
        assert smooth.sum() > 200
        grad, hess = PinballLoss(quantile).gradients(y, raw)
        numeric = (
            _pinball(quantile, y, raw + eps) - _pinball(quantile, y, raw - eps)
        ) / (2.0 * eps)
        assert np.allclose(grad[smooth], numeric[smooth], atol=1e-5)
        assert np.all(hess == 1.0)

    def test_base_score_is_log_quantile(self):
        rng = np.random.default_rng(3)
        y = rng.lognormal(size=500)
        for quantile in INTERVAL_QUANTILES:
            assert PinballLoss(quantile).base_score(y) == pytest.approx(
                float(np.quantile(np.log(y), quantile))
            )

    def test_rejects_bad_quantile_and_targets(self):
        for quantile in (0.0, 1.0, -0.1, 1.7):
            with pytest.raises(ModelError):
                PinballLoss(quantile)
        with pytest.raises(ModelError):
            PinballLoss(0.5).validate_targets(np.array([1.0, 0.0]))

    def test_booster_accepts_pinball_objective(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(120, 2))
        y = np.exp(x[:, 0]) * rng.lognormal(sigma=0.2, size=120)
        params = BoosterParams(n_estimators=15, max_depth=3)
        for objective in ("pinball", PinballLoss(0.9)):
            model = GradientBoostingRegressor(params, objective=objective)
            preds = model.fit(x, y).predict(x)
            assert np.all(preds > 0)


class TestCoverageCalibration:
    """Held-out q10–q90 coverage of pinball heads lands in [0.7, 0.95]."""

    @settings(max_examples=5, deadline=None, derandomize=True)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_heldout_coverage_in_band(self, seed):
        rng = np.random.default_rng(seed)
        n_train, n_test = 400, 200
        x = rng.uniform(0.0, 4.0, size=(n_train + n_test, 3))
        # Heteroscedastic positive response: multiplicative lognormal
        # noise whose spread grows with the third feature.
        signal = 5.0 * np.exp(0.6 * x[:, 0] - 0.2 * x[:, 1])
        sigma = 0.3 * (0.5 + x[:, 2] / 4.0)
        y = signal * rng.lognormal(mean=0.0, sigma=sigma)

        params = BoosterParams(n_estimators=60, max_depth=3)
        heads = {
            quantile: GradientBoostingRegressor(
                params, objective=PinballLoss(quantile), seed=0
            ).fit(x[:n_train], y[:n_train])
            for quantile in (INTERVAL_QUANTILES[0], INTERVAL_QUANTILES[2])
        }
        lo = heads[INTERVAL_QUANTILES[0]].predict(x[n_train:])
        hi = heads[INTERVAL_QUANTILES[2]].predict(x[n_train:])
        coverage = float(np.mean((lo <= y[n_train:]) & (y[n_train:] <= hi)))
        assert 0.7 <= coverage <= 0.95


class TestPCCInterval:
    def test_constructor_rejects_crossing_curves(self):
        mid = PowerLawPCC(a=-0.5, b=100.0)
        with pytest.raises(FittingError):
            PCCInterval(
                lo=PowerLawPCC(a=-0.2, b=100.0),
                mid=mid,
                hi=PowerLawPCC(a=-0.9, b=100.0),
            )
        with pytest.raises(FittingError):
            PCCInterval(
                lo=PowerLawPCC(a=-0.5, b=150.0),
                mid=mid,
                hi=PowerLawPCC(a=-0.5, b=120.0),
            )

    def test_from_quantiles_repairs_crossing(self):
        mid = PowerLawPCC(a=-0.5, b=120.0)
        interval = PCCInterval.from_quantiles(
            lo=PowerLawPCC(a=-0.2, b=100.0),
            mid=mid,
            hi=PowerLawPCC(a=-0.9, b=150.0),
            reference_tokens=32.0,
        )
        lo_rt = interval.lo.runtime(TOKEN_GRID)
        mid_rt = interval.mid.runtime(TOKEN_GRID)
        hi_rt = interval.hi.runtime(TOKEN_GRID)
        assert np.all(lo_rt <= mid_rt * (1 + 1e-9))
        assert np.all(mid_rt <= hi_rt * (1 + 1e-9))
        assert interval.mid == mid  # the median is never touched

    def test_from_quantiles_reanchors_at_reference(self):
        # Only hi's exponent crosses; the repaired hi must predict the
        # same run time at the reference allocation as the raw fit did.
        hi_raw = PowerLawPCC(a=-0.8, b=400.0)
        interval = PCCInterval.from_quantiles(
            lo=PowerLawPCC(a=-0.5, b=80.0),
            mid=PowerLawPCC(a=-0.5, b=100.0),
            hi=hi_raw,
            reference_tokens=10.0,
        )
        assert interval.hi.a == pytest.approx(-0.5)
        assert interval.hi.runtime(10.0) == pytest.approx(hi_raw.runtime(10.0))

    def test_from_quantiles_is_identity_when_ordered(self):
        lo = PowerLawPCC(a=-0.6, b=80.0)
        mid = PowerLawPCC(a=-0.5, b=100.0)
        hi = PowerLawPCC(a=-0.4, b=130.0)
        interval = PCCInterval.from_quantiles(lo, mid, hi, reference_tokens=8)
        assert interval.mid == mid
        for fixed, original in ((interval.lo, lo), (interval.hi, hi)):
            assert fixed.a == pytest.approx(original.a)
            assert fixed.b == pytest.approx(original.b, rel=1e-12)

    def test_degenerate(self):
        mid = PowerLawPCC(a=-0.5, b=100.0)
        interval = PCCInterval.degenerate(mid)
        assert interval.is_degenerate
        lo, mid_rt, hi = interval.runtime_interval(16)
        assert lo == mid_rt == hi == pytest.approx(mid.runtime(16))


@pytest.fixture()
def interval():
    return PCCInterval(
        lo=PowerLawPCC(a=-0.6, b=80.0),
        mid=PowerLawPCC(a=-0.5, b=100.0),
        hi=PowerLawPCC(a=-0.4, b=140.0),
    )


class TestRiskKnob:
    def test_endpoints(self, interval):
        for risk, curve in (
            (0.5, interval.mid),
            (INTERVAL_QUANTILES[2], interval.hi),
            (INTERVAL_QUANTILES[0], interval.lo),
        ):
            at_risk = pcc_at_risk(interval, risk)
            assert at_risk.a == pytest.approx(curve.a)
            assert at_risk.b == pytest.approx(curve.b, rel=1e-9)

    def test_monotone_in_risk(self, interval):
        runtimes = [
            pcc_at_risk(interval, risk).runtime(64.0)
            for risk in (0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95)
        ]
        assert runtimes == sorted(runtimes)

    def test_extrapolation_clamps_exponent(self):
        interval = PCCInterval(
            lo=PowerLawPCC(a=-0.9, b=80.0),
            mid=PowerLawPCC(a=-0.5, b=100.0),
            hi=PowerLawPCC(a=-0.1, b=140.0),
        )
        extreme = pcc_at_risk(interval, 0.999)
        assert extreme.a <= 0.0
        assert extreme.is_non_increasing

    def test_rejects_out_of_range_risk(self, interval):
        for risk in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(FittingError):
                pcc_at_risk(interval, risk)

    def test_risk_floor_strengthens_point_floor(self, interval):
        point = tokens_for_slowdown(interval.mid, 200.0, 0.1)
        at_median = tokens_within_slowdown_at_risk(interval, 0.5, 200.0, 0.1)
        at_q90 = tokens_within_slowdown_at_risk(interval, 0.9, 200.0, 0.1)
        assert at_median is not None and at_q90 is not None
        assert min(at_median, 200) == point
        assert at_q90 >= at_median
        # At the returned allocation the q90 run time meets the budget.
        bound = 1.1 * interval.mid.runtime(200.0)
        assert interval.hi.runtime(at_q90) <= bound * (1 + 1e-9)

    def test_infeasible_returns_none(self):
        flat_hi = PCCInterval(
            lo=PowerLawPCC(a=-0.5, b=50.0),
            mid=PowerLawPCC(a=0.0, b=100.0),
            hi=PowerLawPCC(a=0.0, b=10_000.0),
        )
        assert (
            tokens_within_slowdown_at_risk(flat_hi, 0.9, 100.0, 0.1) is None
        )

    def test_deadline_search_at_risk(self, interval):
        deadline = interval.mid.runtime(64.0)
        point = cheapest_within_deadline(interval.mid, deadline)
        risky = cheapest_within_deadline(
            interval.mid, deadline, interval=interval, risk=0.9
        )
        assert point is not None and risky is not None
        assert risky >= point
        assert interval.hi.runtime(risky) <= deadline * (1 + 1e-9)

    def test_deadline_search_requires_interval_with_risk(self, interval):
        with pytest.raises(PipelineError):
            cheapest_within_deadline(interval.mid, 10.0, risk=0.9)


class TestModelIntervals:
    @pytest.fixture(scope="class")
    def heads_model(self, dataset):
        return XGBoostPL(seed=0, quantile_heads=True).fit(dataset)

    def test_point_path_unchanged_by_heads(self, dataset, heads_model):
        plain = XGBoostPL(seed=0).fit(dataset)
        tokens = np.full(len(dataset), 100.0)
        np.testing.assert_array_equal(
            plain.predict_runtime_at(dataset, tokens),
            heads_model.predict_runtime_at(dataset, tokens),
        )

    def test_predict_interval_ordered(self, dataset, heads_model):
        assert heads_model.supports_intervals
        tokens = np.full(len(dataset), 40.0)
        lo, mid, hi = heads_model.predict_interval(dataset, tokens)
        assert np.all(lo <= mid) and np.all(mid <= hi)
        assert np.any(lo < hi)  # genuinely non-degenerate somewhere

    def test_predict_pcc_intervals_ordered(self, dataset, heads_model):
        intervals = heads_model.predict_pcc_intervals(dataset)
        assert intervals is not None and len(intervals) == len(dataset)
        for iv in intervals:
            assert isinstance(iv, PCCInterval)
            lo = iv.lo.runtime(TOKEN_GRID)
            hi = iv.hi.runtime(TOKEN_GRID)
            mid = iv.mid.runtime(TOKEN_GRID)
            assert np.all(lo <= mid * (1 + 1e-9))
            assert np.all(mid <= hi * (1 + 1e-9))
        assert any(not iv.is_degenerate for iv in intervals)

    def test_plain_model_yields_degenerate_intervals(self, dataset):
        plain = XGBoostPL(seed=0).fit(dataset)
        assert not plain.supports_intervals
        intervals = plain.predict_pcc_intervals(dataset)
        assert intervals is not None
        assert all(iv.is_degenerate for iv in intervals)

    def test_nn_ensemble_intervals(self, dataset):
        config = TrainConfig(epochs=5)
        solo = NNPCCModel(train_config=config, seed=0).fit(dataset)
        ensemble = NNPCCModel(
            train_config=config, seed=0, ensemble_size=3
        ).fit(dataset)
        # The primary member is byte-identical with or without the
        # extra members (their seeds are independent streams).
        np.testing.assert_array_equal(
            solo.predict_parameters(dataset),
            ensemble.predict_parameters(dataset),
        )
        assert ensemble.supports_intervals and not solo.supports_intervals
        lo, mid, hi = ensemble.predict_interval(
            dataset, np.full(len(dataset), 40.0)
        )
        assert np.all(lo <= mid) and np.all(mid <= hi)
        for iv in ensemble.predict_pcc_intervals(dataset):
            lo_rt = iv.lo.runtime(TOKEN_GRID)
            hi_rt = iv.hi.runtime(TOKEN_GRID)
            assert np.all(lo_rt <= hi_rt * (1 + 1e-9))
            assert iv.hi.a <= 0.0

    def test_nn_rejects_bad_ensemble_size(self):
        with pytest.raises(ModelError):
            NNPCCModel(ensemble_size=0)


class TestRiskyPipeline:
    @pytest.fixture(scope="class")
    def heads_model(self, dataset):
        return XGBoostPL(seed=0, quantile_heads=True).fit(dataset)

    def test_recommendations_carry_intervals(
        self, heads_model, workload_jobs
    ):
        scorer = ScoringPipeline(heads_model, risk=0.9)
        job = workload_jobs[0]
        rec = scorer.score(job.plan, job.requested_tokens)
        assert rec.risk == 0.9
        assert rec.pcc_interval is not None
        lo, mid, hi = rec.runtime_interval_at(rec.optimal_tokens)
        assert lo <= mid <= hi

    def test_risk_strengthens_slo_floor(self, heads_model, workload_jobs):
        jobs = workload_jobs[:10]
        plans = [j.plan for j in jobs]
        requested = [j.requested_tokens for j in jobs]
        point = ScoringPipeline(heads_model, max_slowdown=0.05)
        risky = ScoringPipeline(heads_model, max_slowdown=0.05, risk=0.9)
        for p_rec, r_rec in zip(
            point.score_batch(plans, requested),
            risky.score_batch(plans, requested),
        ):
            assert r_rec.optimal_tokens >= p_rec.optimal_tokens

    def test_rejects_out_of_range_risk(self, heads_model):
        for risk in (0.0, 1.0, -1.0):
            with pytest.raises(PipelineError):
                ScoringPipeline(heads_model, risk=risk)


class TestCoverageDrift:
    def _monitor(self, **overrides):
        defaults = dict(window=40, patience=5, min_observations=10)
        defaults.update(overrides)
        return PredictionMonitor(**defaults)

    def test_fires_on_coverage_collapse_with_accurate_point(self):
        monitor = self._monitor()
        # Calibrated regime: actuals inside the band, APE zero.
        for _ in range(20):
            monitor.observe(10.0, 10.0, interval=(8.0, 12.0))
        assert not monitor.needs_retraining
        # Shift: point predictions stay perfect (APE 0) but the actual
        # run time falls outside the predicted band every time — only
        # the coverage rule can see this.
        for _ in range(30):
            monitor.observe(14.0, 14.0, interval=(8.0, 12.0))
        assert monitor.needs_retraining
        snapshot = monitor.snapshot()
        assert snapshot.breach_reason == "coverage"
        assert snapshot.rolling_coverage is not None
        assert snapshot.rolling_coverage < 0.65  # 0.8 - 0.15, the alarm

    def test_quiet_on_null(self):
        monitor = self._monitor()
        rng = np.random.default_rng(11)
        for _ in range(200):
            actual = float(rng.uniform(9.0, 11.0))
            monitor.observe(10.0, actual, interval=(8.5, 11.5))
        assert not monitor.needs_retraining
        assert monitor.snapshot().breach_reason is None
        assert monitor.rolling_coverage == 1.0

    def test_needs_min_interval_observations(self):
        monitor = self._monitor(min_observations=25)
        for _ in range(20):  # below min_observations: no alarm possible
            monitor.observe(10.0, 10.0, interval=(11.0, 12.0))
        assert not monitor.needs_retraining

    def test_point_only_callers_unaffected(self):
        monitor = self._monitor()
        for _ in range(100):
            monitor.observe(10.0, 10.1)
        assert monitor.rolling_coverage is None
        assert not monitor.needs_retraining

    def test_rejects_bad_intervals_and_params(self):
        monitor = self._monitor()
        with pytest.raises(PipelineError):
            monitor.observe(10.0, 10.0, interval=(0.0, 5.0))
        with pytest.raises(PipelineError):
            monitor.observe(10.0, 10.0, interval=(6.0, 5.0))
        with pytest.raises(PipelineError):
            PredictionMonitor(coverage_target=1.5)
        with pytest.raises(PipelineError):
            PredictionMonitor(coverage_target=0.8, coverage_tolerance=0.9)

    def test_reset_clears_coverage_state(self):
        monitor = self._monitor()
        for _ in range(30):
            monitor.observe(10.0, 20.0, interval=(8.0, 12.0))
        monitor.reset()
        assert monitor.rolling_coverage is None
        assert not monitor.needs_retraining


def _rec(pcc, interval=None, tokens=50):
    from repro.tasq.pipeline import TokenRecommendation

    return TokenRecommendation(
        job_id="job-0",
        pcc=pcc,
        requested_tokens=100,
        optimal_tokens=tokens,
        predicted_runtime_at_requested=float(pcc.runtime(100)),
        predicted_runtime_at_optimal=float(pcc.runtime(tokens)),
        pcc_interval=interval,
        risk=0.9 if interval is not None else None,
    )


class TestPromotionGate:
    def _shadow(self, gate=None, model=None):
        class _Pipeline:
            def __init__(self):
                self.model = model

        return ShadowState(
            pipeline=_Pipeline(),
            gate=gate or PromotionGate(min_observations=10),
            monitor=PredictionMonitor(
                window=40, patience=5, min_observations=5
            ),
        )

    def test_gate_defaults_match_docs(self):
        gate = PromotionGate()
        assert gate.min_observations == 40
        assert gate.max_ape_ratio == 1.1
        assert gate.coverage_floor == 0.65
        assert gate.coverage_ceiling == 0.98

    def test_gate_validation(self):
        with pytest.raises(ServingError):
            PromotionGate(min_observations=0)
        with pytest.raises(ServingError):
            PromotionGate(max_ape_ratio=0.0)
        with pytest.raises(ServingError):
            PromotionGate(coverage_floor=0.9, coverage_ceiling=0.8)

    def test_promotes_accurate_calibrated_challenger(self, interval):
        shadow = self._shadow()
        champion = PredictionMonitor(window=40, min_observations=5)
        pcc = interval.mid
        _, _, hi = interval.runtime_interval(50)
        for i in range(12):
            job_id = f"job-{i}"
            shadow._pending[job_id] = _rec(pcc, interval)
            # 3 of 12 actuals land outside the band: coverage 0.75 sits
            # inside the gate's [0.65, 0.98] (never 1.0 — that would
            # trip the too-wide ceiling).
            actual = hi * 1.5 if i % 4 == 0 else float(pcc.runtime(50)) * 1.02
            assert shadow.observe(job_id, 50, actual)
            champion.observe(float(pcc.runtime(50)) * 1.5, actual)
        assert shadow.decide(champion) is ShadowDecision.PROMOTED
        # One-shot: the decision is stable afterwards.
        assert shadow.decide(champion) is ShadowDecision.PROMOTED

    def test_rejects_less_accurate_challenger(self, interval):
        shadow = self._shadow()
        champion = PredictionMonitor(window=40, min_observations=5)
        pcc = interval.mid
        for i in range(12):
            job_id = f"job-{i}"
            shadow._pending[job_id] = _rec(pcc)
            actual = float(pcc.runtime(50)) * 2.0  # challenger APE 50%
            shadow.observe(job_id, 50, actual)
            champion.observe(actual * 1.01, actual)  # champion APE 1%
        assert shadow.decide(champion) is ShadowDecision.REJECTED

    def test_rejects_miscalibrated_challenger(self, interval):
        shadow = self._shadow()
        champion = PredictionMonitor(window=40, min_observations=5)
        pcc = interval.mid
        lo, _, hi = interval.runtime_interval(50)
        for i in range(12):
            job_id = f"job-{i}"
            shadow._pending[job_id] = _rec(pcc, interval)
            actual = hi * 3.0  # far outside the band: coverage 0
            shadow.observe(job_id, 50, actual)
            champion.observe(actual * 3.0, actual)  # champion even worse
        assert shadow.decide(champion) is ShadowDecision.REJECTED

    def test_pending_until_min_observations(self, interval):
        shadow = self._shadow()
        champion = PredictionMonitor()
        pcc = interval.mid
        for i in range(5):
            job_id = f"job-{i}"
            shadow._pending[job_id] = _rec(pcc)
            shadow.observe(job_id, 50, float(pcc.runtime(50)))
        assert shadow.decide(champion) is ShadowDecision.PENDING

    def test_observe_unknown_job_is_noop(self, interval):
        shadow = self._shadow()
        assert not shadow.observe("never-scored", 50, 10.0)
